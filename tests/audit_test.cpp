#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "core/sm.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "integrity/fault_injector.hpp"
#include "isa/trace_builder.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.name = "small";
    cfg.numSms = 4;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {128 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

RenderSubmission
smallFrame(AddressSpace &heap)
{
    static std::vector<std::unique_ptr<Scene>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Scene>(buildSceneByName("PT", heap)));
    PipelineConfig pc;
    pc.width = 160;
    pc.height = 90;
    RenderPipeline pipe(pc, heap);
    return pipe.submit(*keep_alive.back());
}

void
enqueueVio(Gpu &gpu, StreamId stream, AddressSpace &heap)
{
    for (const KernelInfo &k : buildVio(heap, 1, 160, 120)) {
        gpu.enqueueKernel(stream, k);
    }
}

// ---------------------------------------------------------------------
// The audit holds on real machines: a concurrent graphics + compute run
// checked at EVERY cycle boundary completes with zero violations. This
// is the strongest form of the acceptance criterion (cadence 1 leaves
// no window for a counted-on-one-side-only request to hide in).
// ---------------------------------------------------------------------
TEST(AuditTest, CleanConcurrentRunPassesAtCadenceOne)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("gfx");
    const StreamId cmp = gpu.createStream("compute");
    submitFrame(gpu, gfx, smallFrame(heap));
    enqueueVio(gpu, cmp, heap);

    integrity::RunOptions opts;
    opts.auditInterval = 1;
    const auto r = gpu.run(100'000'000ull, opts);

    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());
}

// ---------------------------------------------------------------------
// A seeded dropped fill breaks the dramReads == fills + pendingFills
// identity forever, so the audit alone (integrity checkers disabled)
// must stop the run with a diagnosable counter-fill-pairing report.
// ---------------------------------------------------------------------
TEST(AuditTest, DroppedFillTripsFillPairing)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::FaultConfig fc;
    fc.dropFillProb = 1.0;
    fc.maxDroppedFills = 1;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);

    integrity::RunOptions opts;
    opts.checkInterval = 0; // watchdog and integrity checkers off
    opts.auditInterval = 256;
    const auto r = gpu.run(10'000'000ull, opts);

    ASSERT_FALSE(r.completed);
    ASSERT_TRUE(r.hang.has_value());
    EXPECT_EQ(r.hang->reason,
              "invariant violation: counter-fill-pairing");
    ASSERT_FALSE(r.hang->violations.empty());
    for (const auto &v : r.hang->violations) {
        EXPECT_EQ(v.check, "counter-fill-pairing") << v.detail;
    }

    // Detected at the first audit tick after the drop.
    ASSERT_EQ(inj.injections().size(), 1u);
    EXPECT_EQ(inj.injections()[0].kind, "drop-fill");
    EXPECT_LE(r.hang->detectedAt,
              inj.injections()[0].cycle + opts.auditInterval);

    // The report renders with enough detail to act on.
    const std::string text = r.hang->render();
    EXPECT_NE(text.find("CRISP integrity report"), std::string::npos);
    EXPECT_NE(text.find("counter-fill-pairing"), std::string::npos);
    EXPECT_NE(text.find("dramReads"), std::string::npos);
}

// ---------------------------------------------------------------------
// The identity the L2 fill double-count broke: on a single-stream run
// the bank-side hit rate and the stream-side hit rate are the same
// number (before the fix every DRAM fill added a phantom access + hit
// to the bank counters only).
// ---------------------------------------------------------------------
TEST(AuditTest, SingleStreamBankAndStreamHitRatesAgree)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::RunOptions opts;
    opts.auditInterval = 1024;
    const auto r = gpu.run(100'000'000ull, opts);
    ASSERT_TRUE(r.completed);

    const StreamStats &st = gpu.stats().stream(s);
    ASSERT_GT(st.l2Accesses, 0u);
    EXPECT_EQ(gpu.l2().accesses(), st.l2Accesses);
    EXPECT_EQ(gpu.l2().hits(), st.l2Hits);
    EXPECT_DOUBLE_EQ(gpu.l2().hitRate(), st.l2HitRate());

    // And the audited identities hold on the final state too.
    std::vector<integrity::InvariantViolation> out;
    audit::auditAll(gpu.stats(), gpu.constSms(), gpu.l2(), r.cycles, out);
    for (const auto &v : out) {
        ADD_FAILURE() << v.check << ": " << v.detail;
    }
}

// ---------------------------------------------------------------------
// Histogram conservation: a histogram built through the public API is
// always self-consistent, and the audit appends nothing for it.
// ---------------------------------------------------------------------
TEST(AuditTest, HistogramAuditAcceptsConsistentHistogram)
{
    Histogram h(16);
    h.add(1);
    h.add(5);
    h.add(400); // clamps into the overflow bucket
    ASSERT_TRUE(h.selfConsistent());

    std::vector<integrity::InvariantViolation> out;
    audit::auditHistogram(h, "test-histogram", 0, out);
    EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------
// An idle machine trivially satisfies every identity (all counters 0):
// guards against checkers that divide or subtract unsigned values
// without an emptiness guard.
// ---------------------------------------------------------------------
TEST(AuditTest, FreshGpuAuditsClean)
{
    Gpu gpu(smallGpu());
    std::vector<integrity::InvariantViolation> out;
    audit::auditAll(gpu.stats(), gpu.constSms(), gpu.l2(), 0, out);
    EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------
// Parked write-through stores are fabric retries but NOT pending reads:
// pendingFabricReads() feeds the read-conservation identity, where a
// store (which gets no response) would count as a read the L2 never
// answers and fail conservation forever.
// ---------------------------------------------------------------------

/** Fabric that refuses every submission. */
class RefusingFabric : public MemFabricPort
{
  public:
    bool submitToL2(MemRequest, Cycle) override { return false; }
};

TEST(AuditTest, ParkedWritesAreNotPendingReads)
{
    SmConfig cfg;
    RefusingFabric fabric;
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);

    // Store-only kernel: every STG is refused and parks in the retry
    // queue.
    TraceBuilder tb(32);
    Addr addr = 0x1000;
    for (uint32_t i = 0; i < 8; ++i) {
        tb.memStrided(Opcode::STG, kNoReg, addr, kLineBytes, 4,
                      DataClass::Compute);
        addr += kLineBytes * 32;
    }
    tb.exit();
    CtaTrace cta;
    cta.warps.push_back(tb.take());
    KernelInfo k;
    k.name = "stores";
    k.grid = {1, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 32;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    sm.launchCta(k, 1, 0, 0);

    Cycle now = 0;
    while (sm.fabricRetryDepth() == 0 && now < 1000) {
        sm.step(++now);
    }
    ASSERT_GT(sm.fabricRetryDepth(), 0u);
    EXPECT_EQ(sm.pendingFabricReads(), 0u);
}

// ---------------------------------------------------------------------
// And at machine scale: a store-heavy run that parks writes under bank
// backpressure passes the cadence-one audit and the final auditAll —
// the conservation identity stays balanced with stores in the retry
// queues.
// ---------------------------------------------------------------------
TEST(AuditTest, StoreHeavyRunAuditsCleanWithParkedWrites)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");

    ComputeKernelDesc d;
    d.name = "scatter-stores";
    d.ctas = 16;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.iterations = 4;
    d.loads = {{MemPatternKind::Gather, heap.alloc(1 << 22), 1 << 22, 4,
                2, 128}};
    d.store = {MemPatternKind::Gather, heap.alloc(1 << 22), 1 << 22, 4,
               2, 128};
    d.hasStore = true;
    gpu.enqueueKernel(s, buildComputeKernel(d));

    integrity::RunOptions opts;
    opts.auditInterval = 1;
    const auto r = gpu.run(100'000'000ull, opts);
    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());

    uint64_t max_wait = 0;
    for (const Sm *sm : gpu.constSms()) {
        max_wait = std::max<uint64_t>(max_wait, sm->maxFabricRetryWait());
    }
    // The workload actually exercised the retry path.
    EXPECT_GT(max_wait, 0u);

    std::vector<integrity::InvariantViolation> out;
    audit::auditAll(gpu.stats(), gpu.constSms(), gpu.l2(), r.cycles, out);
    for (const auto &v : out) {
        ADD_FAILURE() << v.check << ": " << v.detail;
    }
}

} // namespace
} // namespace crisp
