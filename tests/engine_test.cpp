#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/table.hpp"
#include "core/sm.hpp"
#include "engine/engine_config.hpp"
#include "engine/worker_pool.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "isa/trace_builder.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/sink.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------------
// Worker pool basics: every lane runs, results land, generations reuse
// the same threads.
// ---------------------------------------------------------------------

TEST(WorkerPool, RunsEveryLaneEveryGeneration)
{
    engine::WorkerPool pool(4);
    ASSERT_EQ(pool.lanes(), 4u);
    std::vector<uint64_t> hits(pool.lanes(), 0);
    for (int round = 0; round < 100; ++round) {
        pool.run([&](uint32_t lane) { hits[lane] += lane + 1; });
    }
    for (uint32_t lane = 0; lane < pool.lanes(); ++lane) {
        EXPECT_EQ(hits[lane], 100u * (lane + 1));
    }
}

TEST(WorkerPool, SingleLaneRunsInline)
{
    engine::WorkerPool pool(1);
    uint32_t ran = 0;
    pool.run([&](uint32_t lane) {
        EXPECT_EQ(lane, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1u);
}

// ---------------------------------------------------------------------
// Staged fabric at the SM level: a staged step plus the owner-side merge
// produces exactly the legacy stats for a memory-heavy kernel.
// ---------------------------------------------------------------------

/** Fabric stub answering reads a fixed delay after submission. */
class TestFabric : public MemFabricPort
{
  public:
    explicit TestFabric(Cycle delay = 100) : delay_(delay) {}

    bool
    submitToL2(MemRequest req, Cycle now) override
    {
        if (refuseAll_ || (acceptBudget_ >= 0 && budgetLeft_ <= 0)) {
            return false;
        }
        if (acceptBudget_ >= 0) {
            --budgetLeft_;
        }
        ++submissions_;
        submissionsThisCycle_++;
        if (req.write) {
            return true;
        }
        pending_.emplace(now + delay_, req);
        return true;
    }

    void
    step(Sm &sm, Cycle now)
    {
        while (!pending_.empty() && pending_.begin()->first <= now) {
            auto node = pending_.extract(pending_.begin());
            sm.memResponse(node.mapped(), now);
        }
    }

    void
    newCycle()
    {
        budgetLeft_ = acceptBudget_;
        submissionsThisCycle_ = 0;
    }

    void setRefuseAll(bool refuse) { refuseAll_ = refuse; }
    /** Limit accepts per cycle; negative = unlimited. */
    void setAcceptBudget(int64_t budget) { acceptBudget_ = budget; }

    uint64_t submissions() const { return submissions_; }
    uint64_t submissionsThisCycle() const { return submissionsThisCycle_; }

  private:
    Cycle delay_;
    bool refuseAll_ = false;
    int64_t acceptBudget_ = -1;
    int64_t budgetLeft_ = -1;
    uint64_t submissions_ = 0;
    uint64_t submissionsThisCycle_ = 0;
    std::multimap<Cycle, MemRequest> pending_;
};

KernelInfo
streamingKernel(uint32_t loads, uint32_t stores)
{
    TraceBuilder tb(32);
    Addr addr = 0x1000;
    for (uint32_t i = 0; i < loads; ++i) {
        tb.memStrided(Opcode::LDG, static_cast<uint8_t>(8 + i % 24), addr,
                      kLineBytes, 4, DataClass::Compute);
        addr += kLineBytes * 32;
    }
    for (uint32_t i = 0; i < stores; ++i) {
        tb.memStrided(Opcode::STG, kNoReg, addr, kLineBytes, 4,
                      DataClass::Compute);
        addr += kLineBytes * 32;
    }
    tb.exit();
    CtaTrace cta;
    cta.warps.push_back(tb.take());
    KernelInfo k;
    k.name = "streaming";
    k.grid = {1, 1, 1};
    k.cta = {32, 1, 1};
    k.regsPerThread = 64;
    k.source = std::make_shared<VectorCtaSource>(
        std::vector<CtaTrace>{std::move(cta)});
    return k;
}

std::string
statsDump(const StatsRegistry &stats)
{
    std::ostringstream os;
    for (const auto &[id, st] : stats.allStreams()) {
        os << id << ':' << st.cycles << ',' << st.instructions << ','
           << st.warpsLaunched << ',' << st.ctasLaunched << ','
           << st.kernelsCompleted << ',' << st.l1Accesses << ','
           << st.l1Hits << ',' << st.l1TexAccesses << ',' << st.l2Accesses
           << ',' << st.l2Hits << ',' << st.dramReads << ','
           << st.dramWrites << ',' << st.smemAccesses << ','
           << st.smemBankConflicts << ',' << st.firstCycle << ','
           << st.lastCycle << '\n';
    }
    return os.str();
}

TEST(StagedFabric, SmStagedStepMatchesLegacy)
{
    auto run = [](bool staged) {
        SmConfig cfg;
        TestFabric fabric(80);
        StatsRegistry stats;
        Sm sm(0, cfg, &fabric, &stats);
        sm.setStagedFabric(staged);
        const KernelInfo k = streamingKernel(40, 12);
        sm.launchCta(k, 1, 0, 0);
        Cycle now = 0;
        while (!sm.idle() && now < 100000) {
            ++now;
            if (staged) {
                sm.stepMemory(now);
            }
            sm.step(now);
            if (staged) {
                sm.flushStagedCtaDones();
                sm.flushShadowStats();
                sm.flushShadowProfiler();
            }
            fabric.step(sm, now);
        }
        EXPECT_TRUE(sm.idle());
        return std::make_tuple(now, statsDump(stats),
                               fabric.submissions());
    };
    EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------
// Whole-machine determinism: the same mixed workload produces
// byte-identical stats, counter-series CSV and Chrome trace for the
// legacy serial path and the staged path at 1, 2 and 4 threads.
// ---------------------------------------------------------------------

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.name = "small";
    cfg.numSms = 4;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {128 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

struct RunOutputs
{
    Cycle cycles = 0;
    std::string stats;
    std::string timelineCsv;
    std::string trace;
    uint64_t ffJumps = 0;
    uint64_t ffCycles = 0;
};

RunOutputs
runMixedWorkload(const engine::EngineConfig &ec)
{
    AddressSpace heap;
    static std::vector<std::unique_ptr<Scene>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Scene>(buildSceneByName("PT", heap)));
    PipelineConfig pc;
    pc.width = 160;
    pc.height = 90;
    RenderPipeline pipe(pc, heap);
    const RenderSubmission frame = pipe.submit(*keep_alive.back());

    Gpu gpu(smallGpu());
    gpu.setEngine(ec);
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId cmp = gpu.createStream("compute");
    submitFrame(gpu, gfx, frame);
    AddressSpace cheap(0x8000'0000ull);
    for (const KernelInfo &k : buildVio(cheap, 1, 160, 120)) {
        gpu.enqueueKernel(cmp, k);
    }
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    part.priorityStream = gfx;
    gpu.setPartition(part);

    telemetry::TelemetryConfig tc;
    tc.sampleInterval = 500;
    telemetry::TelemetrySink sink(tc);
    gpu.setTelemetry(&sink);

    const auto r = gpu.run(500'000'000ull);
    EXPECT_TRUE(r.completed);

    RunOutputs out;
    out.cycles = r.cycles;
    out.stats = statsDump(gpu.stats());
    out.timelineCsv = sink.series().toTable().toCsv();
    out.trace = telemetry::chromeTraceJson(sink);
    out.ffJumps = gpu.fastForwardJumps();
    out.ffCycles = gpu.fastForwardCycles();
    return out;
}

TEST(EngineDeterminism, ThreadCountDoesNotChangeOutputs)
{
    engine::EngineConfig legacy;   // threads = 1, direct fabric

    engine::EngineConfig staged1;
    staged1.stagedFabric = true;   // staged semantics, still serial

    // Oversubscription opt-in: the point is to exercise the multi-lane
    // code paths even on hosts with fewer cores than lanes, where the
    // default clamp would silently fall back to serial.
    engine::EngineConfig threads2;
    threads2.threads = 2;
    threads2.allowOversubscribe = true;

    engine::EngineConfig threads4;
    threads4.threads = 4;
    threads4.allowOversubscribe = true;

    const RunOutputs base = runMixedWorkload(legacy);
    ASSERT_GT(base.cycles, 0u);

    for (const auto &ec : {staged1, threads2, threads4}) {
        const RunOutputs got = runMixedWorkload(ec);
        EXPECT_EQ(got.cycles, base.cycles);
        EXPECT_EQ(got.stats, base.stats);
        EXPECT_EQ(got.timelineCsv, base.timelineCsv);
        EXPECT_EQ(got.trace, base.trace);
    }
}

// ---------------------------------------------------------------------
// Idle fast-forward: an idle-heavy workload (two kernels separated by a
// long fixed-function delay) produces identical outputs with and without
// fast-forward, and the fast-forwarded run actually jumped.
// ---------------------------------------------------------------------

RunOutputs
runIdleHeavy(bool fast_forward)
{
    engine::EngineConfig ec;
    ec.fastForward = fast_forward;

    AddressSpace cheap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    gpu.setEngine(ec);
    const StreamId s = gpu.createStream("compute");

    ComputeKernelDesc d;
    d.name = "burst";
    d.ctas = 8;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.fp32Ops = 16;
    d.loads = {{MemPatternKind::Streaming, cheap.alloc(1 << 18), 1 << 18,
                4, 1, 128}};
    const KernelId first = gpu.enqueueKernel(s, buildComputeKernel(d));
    // A long fixed-function gap: the machine is completely idle between
    // the first kernel draining and the second becoming eligible.
    d.name = "burst2";
    gpu.enqueueKernelAfter(s, buildComputeKernel(d), first, 250'000);

    telemetry::TelemetryConfig tc;
    tc.sampleInterval = 1000;
    telemetry::TelemetrySink sink(tc);
    gpu.setTelemetry(&sink);

    const auto r = gpu.run(500'000'000ull);
    EXPECT_TRUE(r.completed);

    RunOutputs out;
    out.cycles = r.cycles;
    out.stats = statsDump(gpu.stats());
    out.timelineCsv = sink.series().toTable().toCsv();
    out.trace = telemetry::chromeTraceJson(sink);
    out.ffJumps = gpu.fastForwardJumps();
    out.ffCycles = gpu.fastForwardCycles();
    return out;
}

TEST(FastForward, IdleJumpPreservesOutputs)
{
    const RunOutputs ticked = runIdleHeavy(false);
    const RunOutputs jumped = runIdleHeavy(true);

    EXPECT_EQ(ticked.ffJumps, 0u);
    EXPECT_GT(jumped.ffJumps, 0u);
    EXPECT_GT(jumped.ffCycles, 100'000u);

    EXPECT_EQ(jumped.cycles, ticked.cycles);
    EXPECT_EQ(jumped.stats, ticked.stats);
    EXPECT_EQ(jumped.timelineCsv, ticked.timelineCsv);
    EXPECT_EQ(jumped.trace, ticked.trace);
}

TEST(FastForward, WorksUnderTheWatchdog)
{
    // The watchdog must observe its checks at the exact configured
    // cadence even while the engine jumps, and the run must still drain.
    const RunOutputs ticked = runIdleHeavy(false);

    engine::EngineConfig ec;
    ec.fastForward = true;
    AddressSpace cheap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    gpu.setEngine(ec);
    const StreamId s = gpu.createStream("compute");
    ComputeKernelDesc d;
    d.name = "burst";
    d.ctas = 8;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.fp32Ops = 16;
    d.loads = {{MemPatternKind::Streaming, cheap.alloc(1 << 18), 1 << 18,
                4, 1, 128}};
    const KernelId first = gpu.enqueueKernel(s, buildComputeKernel(d));
    d.name = "burst2";
    gpu.enqueueKernelAfter(s, buildComputeKernel(d), first, 250'000);

    telemetry::TelemetryConfig tc;
    tc.sampleInterval = 1000;
    telemetry::TelemetrySink sink(tc);
    gpu.setTelemetry(&sink);

    integrity::RunOptions opts;
    opts.checkInterval = 5'000;
    const auto r = gpu.run(500'000'000ull, opts);
    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());
    EXPECT_GT(gpu.fastForwardJumps(), 0u);
    EXPECT_EQ(r.cycles, ticked.cycles);
    EXPECT_EQ(statsDump(gpu.stats()), ticked.stats);
}

// ---------------------------------------------------------------------
// Fabric-retry fairness: the per-cycle retry drain is bounded, so a
// deeply backpressured SM cannot spend whole cycles flushing its retry
// queue while fresh requests starve.
// ---------------------------------------------------------------------

TEST(FabricRetry, DrainIsBoundedPerCycle)
{
    SmConfig cfg;
    cfg.maxFabricRetriesPerCycle = 8;
    TestFabric fabric(50);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);

    // Phase 1: the fabric refuses everything while the SM issues a burst
    // of cold loads, building a deep retry queue.
    fabric.setRefuseAll(true);
    sm.launchCta(streamingKernel(40, 0), 1, 0, 0);
    Cycle now = 0;
    while (sm.pendingFabricReads() <
               3 * cfg.maxFabricRetriesPerCycle &&
           now < 1000) {
        ++now;
        fabric.newCycle();
        sm.step(now);
    }
    ASSERT_GE(sm.pendingFabricReads(), 3 * cfg.maxFabricRetriesPerCycle);

    // Phase 2: the fabric opens fully. The drain must not exceed the cap
    // in any single cycle.
    fabric.setRefuseAll(false);
    while (sm.pendingFabricReads() > 0 && now < 2000) {
        ++now;
        fabric.newCycle();
        sm.step(now);
        EXPECT_LE(fabric.submissionsThisCycle(),
                  cfg.maxFabricRetriesPerCycle + cfg.l1PortsPerCycle);
        fabric.step(sm, now);
    }
    EXPECT_EQ(sm.pendingFabricReads(), 0u);
}

TEST(FabricRetry, FreshRequestsAreNotLivelockedByBacklog)
{
    // An SM with a retry backlog deeper than the fabric's per-cycle
    // accept budget: with an unbounded drain the backlog would consume
    // the whole budget every cycle and fresh misses would join the back
    // of the queue indefinitely; the cap leaves budget for fresh
    // requests to submit directly.
    SmConfig cfg;
    cfg.maxFabricRetriesPerCycle = 8;
    TestFabric fabric(50);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);

    fabric.setRefuseAll(true);
    sm.launchCta(streamingKernel(40, 0), 1, 0, 0);
    Cycle now = 0;
    while (sm.pendingFabricReads() < 30 && now < 1000) {
        ++now;
        fabric.newCycle();
        sm.step(now);
    }
    const uint64_t backlog = sm.pendingFabricReads();
    ASSERT_GE(backlog, 30u);

    // Reopen with a budget just above the cap: every cycle the capped
    // drain uses at most maxFabricRetriesPerCycle accepts, leaving room
    // for the LDST unit's fresh submissions the same cycle.
    fabric.setRefuseAll(false);
    fabric.setAcceptBudget(cfg.maxFabricRetriesPerCycle + 2);
    bool fresh_progressed = false;
    for (int i = 0; i < 50 && sm.pendingFabricReads() > 0; ++i) {
        ++now;
        fabric.newCycle();
        const uint64_t before = fabric.submissions();
        sm.step(now);
        // Accepts happened and the retry queue shrank monotonically:
        // the budget above the cap means fresh LDST traffic can always
        // reach the fabric the cycle it misses.
        if (fabric.submissions() >
            before + cfg.maxFabricRetriesPerCycle) {
            fresh_progressed = true;
        }
        fabric.step(sm, now);
    }
    EXPECT_TRUE(fresh_progressed);
    EXPECT_EQ(sm.pendingFabricReads(), 0u);
}

TEST(FabricRetry, DefaultCapIsFinite)
{
    // The out-of-the-box cap bounds the per-cycle drain: two full
    // l1PortsPerCycle generations of refused traffic. A default of 0
    // would silently restore the unbounded flush this cap exists to
    // prevent.
    EXPECT_EQ(SmConfig{}.maxFabricRetriesPerCycle, 8u);
}

TEST(FabricRetry, ZeroCapIsAnExplicitOptOut)
{
    // maxFabricRetriesPerCycle = 0 means "no cap": the whole backlog
    // drains the cycle the fabric reopens.
    SmConfig cfg;
    cfg.maxFabricRetriesPerCycle = 0;
    TestFabric fabric(50);
    StatsRegistry stats;
    Sm sm(0, cfg, &fabric, &stats);

    fabric.setRefuseAll(true);
    sm.launchCta(streamingKernel(40, 0), 1, 0, 0);
    Cycle now = 0;
    while (sm.pendingFabricReads() < 30 && now < 1000) {
        ++now;
        fabric.newCycle();
        sm.step(now);
    }
    ASSERT_GE(sm.pendingFabricReads(), 30u);

    fabric.setRefuseAll(false);
    ++now;
    fabric.newCycle();
    sm.step(now);
    EXPECT_EQ(sm.pendingFabricReads(), 0u);
}

} // namespace
} // namespace crisp
