#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/icnt.hpp"
#include "mem/l2_subsystem.hpp"
#include "mem/mshr.hpp"

namespace crisp
{
namespace
{

CacheGeometry
smallGeom()
{
    // 4 sets x 2 ways x 128 B = 1 KiB.
    return {1024, 2, kLineBytes};
}

TEST(Cache, HitAfterFill)
{
    SetAssocCache c(smallGeom());
    EXPECT_FALSE(c.access(0x0, false, 0, DataClass::Compute).hit);
    EXPECT_TRUE(c.access(0x0, false, 0, DataClass::Compute).hit);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(Cache, LruEviction)
{
    SetAssocCache c(smallGeom());
    // Three lines mapping to the same set in a 2-way cache: with the
    // xor-fold hash we find conflicting lines by probing.
    std::vector<Addr> conflict;
    for (Addr a = 0; conflict.size() < 3 && a < (1u << 22);
         a += kLineBytes) {
        c.invalidateAll();
        // Choose lines with the same mapped set by testing eviction.
        if (conflict.empty()) {
            conflict.push_back(a);
            continue;
        }
        c.access(conflict[0], false, 0, DataClass::Compute);
        c.access(a, false, 0, DataClass::Compute);
        // If both still resident they share capacity fine; we need same
        // set: fill both then check an access pattern. Simpler check:
        // same set iff, after filling 2-way with [0]+a, re-filling with a
        // third line evicts. Collect lines whose tag differs.
        conflict.push_back(a);
    }
    // Direct LRU order check within one set using found conflicts is
    // hash-dependent; instead verify the generic invariant: capacity never
    // exceeded and the oldest line is replaced first in a fully-mapped
    // scan.
    c.invalidateAll();
    uint64_t evictions = 0;
    for (int i = 0; i < 64; ++i) {
        const auto r =
            c.access(static_cast<Addr>(i) * kLineBytes, false, 0,
                     DataClass::Compute);
        if (r.evicted) {
            ++evictions;
        }
    }
    // 64 distinct lines into an 8-line cache: 56 evictions.
    EXPECT_EQ(evictions, 64u - 8u);
    EXPECT_EQ(c.composition().validLines, 8u);
}

TEST(Cache, LruPrefersLeastRecentlyUsed)
{
    // One-set cache (fully associative with 4 ways).
    SetAssocCache c({4 * kLineBytes, 4, kLineBytes});
    const Addr a = 0 * kLineBytes;
    const Addr b = 1 * kLineBytes;
    const Addr d = 2 * kLineBytes;
    const Addr e = 3 * kLineBytes;
    const Addr f = 4 * kLineBytes;
    c.access(a, false, 0, DataClass::Compute);
    c.access(b, false, 0, DataClass::Compute);
    c.access(d, false, 0, DataClass::Compute);
    c.access(e, false, 0, DataClass::Compute);
    // Touch a again so b is LRU.
    c.access(a, false, 0, DataClass::Compute);
    const auto r = c.access(f, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, b);
    EXPECT_TRUE(c.probe(a, 0));
    EXPECT_FALSE(c.probe(b, 0));
}

TEST(Cache, HitLruPositionReported)
{
    SetAssocCache c({4 * kLineBytes, 4, kLineBytes});
    c.access(0 * kLineBytes, false, 0, DataClass::Compute);
    c.access(1 * kLineBytes, false, 0, DataClass::Compute);
    // 0 was used before 1: hitting 0 now sees one more-recent line.
    auto r = c.access(0, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.hitLruPos, 1u);
    // Immediately re-hitting 0 reports MRU position.
    r = c.access(0, false, 0, DataClass::Compute);
    EXPECT_EQ(r.hitLruPos, 0u);
}

TEST(Cache, NoAllocateOnMissLeavesCacheUntouched)
{
    SetAssocCache c(smallGeom());
    const auto r = c.access(0x0, true, 0, DataClass::Compute,
                            /*allocate_on_miss=*/false);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(c.probe(0x0, 0));
    EXPECT_EQ(c.composition().validLines, 0u);
}

TEST(Cache, WriteMarksDirtyAndEvictionReportsIt)
{
    SetAssocCache c({2 * kLineBytes, 2, kLineBytes});
    c.access(0 * kLineBytes, true, 0, DataClass::Compute);
    c.access(1 * kLineBytes, false, 0, DataClass::Compute);
    const auto r = c.access(2 * kLineBytes, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, 0u);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, CompositionTracksDataClasses)
{
    SetAssocCache c(smallGeom());
    c.access(0 * kLineBytes, false, 0, DataClass::Texture);
    c.access(1 * kLineBytes, false, 0, DataClass::Texture);
    c.access(2 * kLineBytes, false, 1, DataClass::Compute);
    const auto comp = c.composition();
    EXPECT_EQ(comp.validLines, 3u);
    EXPECT_EQ(comp.byClass[static_cast<size_t>(DataClass::Texture)], 2u);
    EXPECT_EQ(comp.byClass[static_cast<size_t>(DataClass::Compute)], 1u);
    EXPECT_GT(comp.fraction(DataClass::Texture), 0.0);
}

TEST(Cache, InvalidateStreamRemovesOnlyThatStream)
{
    SetAssocCache c(smallGeom());
    c.access(0 * kLineBytes, false, 7, DataClass::Compute);
    c.access(1 * kLineBytes, false, 8, DataClass::Compute);
    c.invalidateStream(7);
    EXPECT_FALSE(c.probe(0 * kLineBytes, 7));
    EXPECT_TRUE(c.probe(1 * kLineBytes, 8));
}

TEST(Cache, SetWindowConfinesStream)
{
    // 8 sets x 2 ways.
    SetAssocCache c({16 * kLineBytes, 2, kLineBytes});
    // Confine stream 5 to a single set: at most 2 lines survive no matter
    // how many distinct lines it touches.
    c.setStreamSetWindow(5, 0, 1);
    for (int i = 0; i < 64; ++i) {
        c.access(static_cast<Addr>(i) * kLineBytes, false, 5,
                 DataClass::Compute);
    }
    EXPECT_EQ(c.composition().validLines, 2u);

    // Another stream without a window still uses the whole cache.
    for (int i = 0; i < 64; ++i) {
        c.access(static_cast<Addr>(i) * kLineBytes, false, 6,
                 DataClass::Compute);
    }
    EXPECT_GT(c.composition().validLines, 2u);
    c.clearSetWindows();
}

TEST(MshrTest, MergeAndFill)
{
    Mshr m(2, 2);
    EXPECT_EQ(m.allocate(0x100, 1), Mshr::Outcome::NewEntry);
    EXPECT_EQ(m.allocate(0x100, 2), Mshr::Outcome::Merged);
    EXPECT_EQ(m.allocate(0x100, 3), Mshr::Outcome::Stall);  // target cap
    EXPECT_TRUE(m.pending(0x100));
    const auto keys = m.fill(0x100);
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], 1u);
    EXPECT_EQ(keys[1], 2u);
    EXPECT_FALSE(m.pending(0x100));
}

TEST(MshrTest, EntryCapStalls)
{
    Mshr m(1, 4);
    EXPECT_EQ(m.allocate(0x100, 1), Mshr::Outcome::NewEntry);
    EXPECT_EQ(m.allocate(0x200, 2), Mshr::Outcome::Stall);
    EXPECT_TRUE(m.full());
    m.fill(0x100);
    EXPECT_EQ(m.allocate(0x200, 2), Mshr::Outcome::NewEntry);
}

TEST(MshrTest, FillUnknownLineReturnsEmpty)
{
    Mshr m(2, 2);
    EXPECT_TRUE(m.fill(0xdead00).empty());
}

TEST(Dram, BandwidthSerializes)
{
    DramChannel d(1.0, 10);  // 1 byte/cycle, latency 10
    const Cycle t0 = d.service(0, 128);
    const Cycle t1 = d.service(0, 128);
    EXPECT_EQ(t0, 128u + 10u);
    EXPECT_EQ(t1, 256u + 10u);
    EXPECT_DOUBLE_EQ(d.busyCycles(), 256.0);
    EXPECT_EQ(d.requests(), 2u);
}

TEST(Dram, IdleChannelStartsAtNow)
{
    DramChannel d(128.0, 100);
    const Cycle t = d.service(1000, 128);
    EXPECT_EQ(t, 1000u + 1u + 100u);
}

TEST(Icnt, TransferAddsLatencyAndOccupancy)
{
    IcntLink link(32.0, 5);
    const Cycle t0 = link.transfer(0, 64);   // 2 cycles occupancy
    const Cycle t1 = link.transfer(0, 64);
    EXPECT_EQ(t0, 2u + 5u);
    EXPECT_EQ(t1, 4u + 5u);
    EXPECT_EQ(link.packets(), 2u);
}

class L2Fixture : public ::testing::Test
{
  protected:
    L2Fixture()
    {
        cfg.numBanks = 2;
        cfg.bankGeometry = {4 * kLineBytes, 2, kLineBytes};
        cfg.l2Latency = 10;
        cfg.icntLatency = 2;
        cfg.icntBytesPerCycle = 1024;
        cfg.dramBytesPerCycle = 64;
        cfg.dramLatency = 50;
        l2 = std::make_unique<L2Subsystem>(cfg, &stats);
        l2->setResponseHandler([this](const MemRequest &r) {
            responses.push_back(r);
        });
    }

    /** Run the subsystem until idle or the cycle budget expires. */
    void
    runUntilIdle(Cycle &now, Cycle budget = 10000)
    {
        const Cycle end = now + budget;
        while (!l2->idle() && now < end) {
            ++now;
            l2->step(now);
        }
    }

    L2Config cfg;
    StatsRegistry stats;
    std::unique_ptr<L2Subsystem> l2;
    std::vector<MemRequest> responses;
};

TEST_F(L2Fixture, MissGoesToDramThenHits)
{
    MemRequest req;
    req.line = 0;
    req.stream = 0;
    req.smId = 0;
    req.completionKey = 42;
    ASSERT_TRUE(l2->submit(req, 0));
    Cycle now = 0;
    runUntilIdle(now);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].completionKey, 42u);
    EXPECT_EQ(stats.stream(0).l2Accesses, 1u);
    EXPECT_EQ(stats.stream(0).l2Hits, 0u);
    EXPECT_EQ(stats.stream(0).dramReads, 1u);
    const Cycle miss_latency = now;
    EXPECT_GT(miss_latency, cfg.dramLatency);

    // Second access to the same line: a hit, much faster.
    responses.clear();
    req.completionKey = 43;
    ASSERT_TRUE(l2->submit(req, now));
    const Cycle start = now;
    runUntilIdle(now);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(stats.stream(0).l2Hits, 1u);
    EXPECT_LT(now - start, miss_latency);
}

TEST_F(L2Fixture, SameLineMissesMergeInMshr)
{
    for (uint64_t k = 1; k <= 3; ++k) {
        MemRequest req;
        req.line = 0x1000;
        req.completionKey = k;
        ASSERT_TRUE(l2->submit(req, 0));
    }
    Cycle now = 0;
    runUntilIdle(now);
    EXPECT_EQ(responses.size(), 3u);
    // One DRAM fill serves all three requesters.
    EXPECT_EQ(stats.stream(0).dramReads, 1u);
}

TEST_F(L2Fixture, WritesAreFireAndForget)
{
    MemRequest req;
    req.line = 0x2000;
    req.write = true;
    ASSERT_TRUE(l2->submit(req, 0));
    Cycle now = 0;
    runUntilIdle(now);
    EXPECT_TRUE(responses.empty());
    EXPECT_TRUE(l2->idle());
}

TEST_F(L2Fixture, BankQueueBackpressure)
{
    // Saturate one bank's queue; eventually submit refuses.
    bool refused = false;
    for (int i = 0; i < 1000; ++i) {
        MemRequest req;
        req.line = static_cast<Addr>(i) * kLineBytes;
        req.completionKey = static_cast<uint64_t>(i);
        if (!l2->submit(req, 0)) {
            refused = true;
            break;
        }
    }
    EXPECT_TRUE(refused);
}

TEST_F(L2Fixture, BankMaskRestrictsBanks)
{
    l2->setStreamBankMask(3, 0x1);  // stream 3 -> bank 0 only
    // All requests of stream 3 land in bank 0's queue: capacity is the
    // bank queue depth.
    uint32_t accepted = 0;
    for (int i = 0; i < 1000; ++i) {
        MemRequest req;
        req.line = static_cast<Addr>(i) * kLineBytes;
        req.stream = 3;
        req.completionKey = static_cast<uint64_t>(i);
        if (!l2->submit(req, 0)) {
            break;
        }
        ++accepted;
    }
    EXPECT_EQ(accepted, cfg.bankQueueCapacity);
}

TEST_F(L2Fixture, CompositionAggregatesBanks)
{
    MemRequest req;
    req.line = 0;
    req.dataClass = DataClass::Texture;
    req.completionKey = 1;
    ASSERT_TRUE(l2->submit(req, 0));
    Cycle now = 0;
    runUntilIdle(now);
    const auto comp = l2->composition();
    EXPECT_EQ(comp.byClass[static_cast<size_t>(DataClass::Texture)], 1u);
    EXPECT_EQ(comp.totalLines, 2u * 4u);
}

TEST_F(L2Fixture, AccessListenerObservesHitsAndMisses)
{
    int observed = 0;
    bool saw_hit = false;
    l2->setAccessListener(
        [&](StreamId, Addr, bool hit, uint32_t) {
            ++observed;
            saw_hit |= hit;
        });
    MemRequest req;
    req.line = 0x3000;
    req.completionKey = 9;
    ASSERT_TRUE(l2->submit(req, 0));
    Cycle now = 0;
    runUntilIdle(now);
    req.completionKey = 10;
    ASSERT_TRUE(l2->submit(req, now));
    runUntilIdle(now);
    EXPECT_EQ(observed, 2);
    EXPECT_TRUE(saw_hit);
}

// --- fill() path: installs without perturbing demand counters -----------

TEST(CacheFill, FillDoesNotCountAccessOrHit)
{
    SetAssocCache c(smallGeom());
    c.access(0x0, false, 0, DataClass::Compute);   // miss installs the tag
    const auto f = c.fill(0x0, false, 0, DataClass::Compute);
    EXPECT_TRUE(f.wasPresent);
    EXPECT_FALSE(f.evicted);
    EXPECT_EQ(c.accesses(), 1u);   // the demand miss only
    EXPECT_EQ(c.hits(), 0u);       // a fill is never a hit
    EXPECT_EQ(c.fills(), 1u);
    EXPECT_TRUE(c.access(0x0, false, 0, DataClass::Compute).hit);
}

TEST(CacheFill, FillDoesNotRefreshLru)
{
    // One set, two ways: recency must belong to demand accesses, so a
    // fill of the older line must not save it from eviction.
    SetAssocCache c({2 * kLineBytes, 2, kLineBytes});
    c.access(0x0, false, 0, DataClass::Compute);
    c.access(0x1000, false, 0, DataClass::Compute);
    c.fill(0x0, false, 0, DataClass::Compute);        // no LRU update
    const auto r = c.access(0x2000, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, 0x0u);   // 0x0 still the LRU despite the fill
}

TEST(CacheFill, FillReinstallsAfterInterimEviction)
{
    // One set, two ways. Install A and dirty B, evict A with C, then
    // complete A's fill: the re-install must evict exactly one victim
    // (LRU = B) and report its dirty state for writeback accounting.
    SetAssocCache c({2 * kLineBytes, 2, kLineBytes});
    c.access(0x0, false, 0, DataClass::Compute);        // A
    c.access(0x1000, true, 0, DataClass::Compute);      // B, dirty
    const auto ev = c.access(0x2000, false, 0, DataClass::Compute);
    ASSERT_TRUE(ev.evicted);
    EXPECT_EQ(ev.evictedLine, 0x0u);                    // A interim-evicted
    EXPECT_FALSE(ev.evictedDirty);
    const auto f = c.fill(0x0, false, 0, DataClass::Compute);
    EXPECT_FALSE(f.wasPresent);
    ASSERT_TRUE(f.evicted);
    EXPECT_EQ(f.evictedLine, 0x1000u);                  // LRU, not C
    EXPECT_TRUE(f.evictedDirty);
    EXPECT_TRUE(c.probe(0x0, 0));
    EXPECT_TRUE(c.probe(0x2000, 0));
    EXPECT_EQ(c.accesses(), 3u);   // fills still uncounted
    EXPECT_EQ(c.hits(), 0u);
}

// --- Sectored-cache eviction coverage -----------------------------------

CacheGeometry
sectoredGeom()
{
    // 4 sets x 2 ways x 128 B lines of 32 B sectors. Low line addresses
    // map set = (addr/128) % 4, so 0x0 / 0x200 / 0x400 share set 0.
    return {1024, 2, kLineBytes, 32};
}

TEST(CacheSectored, SectorMissOnValidTagFetchesOnlyTheSector)
{
    SetAssocCache c(sectoredGeom());
    EXPECT_FALSE(c.access(0x0, false, 0, DataClass::Texture).hit);
    const auto r = c.access(0x20, false, 0, DataClass::Texture);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.sectorMiss);
    EXPECT_FALSE(r.evicted);   // sector fetch never displaces a line
    EXPECT_EQ(c.sectorMisses(), 1u);
    EXPECT_TRUE(c.access(0x20, false, 0, DataClass::Texture).hit);
    EXPECT_EQ(c.accesses(), 3u);
    EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheSectored, EvictionReportsPartialValidSectors)
{
    SetAssocCache c(sectoredGeom());
    c.access(0x0, false, 0, DataClass::Texture);    // sector 0
    c.access(0x20, false, 0, DataClass::Texture);   // sector 1
    c.access(0x200, false, 0, DataClass::Texture);  // 2nd way of set 0
    const auto r = c.access(0x400, false, 0, DataClass::Texture);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evictedLine, 0x0u);
    // Writeback sizing for a partially filled line needs the bitmap:
    // only sectors 0 and 1 were ever fetched.
    EXPECT_EQ(r.evictedValidSectors, 0x3u);
    // The new line starts over with just its own sector.
    EXPECT_FALSE(c.access(0x420, false, 0, DataClass::Texture).hit);
    EXPECT_EQ(c.sectorMisses(), 1u + 1u);
}

TEST(CacheSectored, InvalidateStreamDiscardsSectorState)
{
    SetAssocCache c(sectoredGeom());
    c.access(0x0, false, /*stream=*/7, DataClass::Texture);
    c.access(0x20, false, 7, DataClass::Texture);
    c.invalidateStream(7);
    EXPECT_FALSE(c.probe(0x0, 7));
    // Re-access is a full line miss with fresh sector state, not a
    // sector miss against a stale bitmap.
    const auto r = c.access(0x20, false, 7, DataClass::Texture);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.sectorMiss);
    // Sector 0's old validity must not have survived the invalidate: the
    // re-installed line knows only sector 1.
    const auto r2 = c.access(0x0, false, 7, DataClass::Texture);
    EXPECT_FALSE(r2.hit);
    EXPECT_TRUE(r2.sectorMiss);
}

TEST(CacheSectored, FillValidatesSectorsWithoutCounting)
{
    SetAssocCache c(sectoredGeom());
    const auto f = c.fill(0x20, false, 0, DataClass::Texture);
    EXPECT_FALSE(f.wasPresent);   // install-at-fill (the L1 path)
    EXPECT_EQ(c.accesses(), 0u);
    // Tag now present but only sector 1 valid: sector 0 is a sector miss.
    const auto r = c.access(0x0, false, 0, DataClass::Texture);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.sectorMiss);
    // A fill on a resident line ORs its sector in.
    EXPECT_TRUE(c.fill(0x40, false, 0, DataClass::Texture).wasPresent);
    EXPECT_TRUE(c.access(0x40, false, 0, DataClass::Texture).hit);
}

// --- MSHR allocation/fill pairing ---------------------------------------

TEST(MshrCounters, AllocationsBalanceFillsAndEntriesInUse)
{
    Mshr m(4, 4);
    EXPECT_EQ(m.allocate(0x0, 1, 0), Mshr::Outcome::NewEntry);
    EXPECT_EQ(m.allocate(0x80, 2, 1), Mshr::Outcome::NewEntry);
    EXPECT_EQ(m.allocate(0x0, 3, 2), Mshr::Outcome::Merged);
    EXPECT_EQ(m.primaryAllocations(), 2u);
    EXPECT_EQ(m.mergedAllocations(), 1u);
    EXPECT_EQ(m.fillsServed(), 0u);
    m.fill(0x0);
    EXPECT_EQ(m.fillsServed(), 1u);
    EXPECT_EQ(m.primaryAllocations(), m.fillsServed() + m.entriesInUse());
    m.fill(0x80);
    EXPECT_EQ(m.primaryAllocations(), m.fillsServed() + m.entriesInUse());
}

// --- The fill-time double-count regression (tentpole) -------------------

TEST_F(L2Fixture, PureMissStreamReadsZeroBankHitRate)
{
    // 16 distinct lines, never re-accessed: a pure-miss stream. The old
    // fill path re-ran access() on the miss-time tag, so every DRAM fill
    // counted a phantom access+hit and the *bank* counters read ~50% hit
    // rate while the stream counters correctly read 0%.
    Cycle now = 0;
    for (uint64_t i = 0; i < 16; ++i) {
        MemRequest req;
        req.line = i * 0x1000;
        req.stream = 0;
        req.smId = 0;
        req.completionKey = i + 1;
        ASSERT_TRUE(l2->submit(req, now));
        runUntilIdle(now);
    }
    EXPECT_EQ(responses.size(), 16u);
    EXPECT_EQ(stats.stream(0).l2Accesses, 16u);
    EXPECT_EQ(stats.stream(0).l2Hits, 0u);
    EXPECT_EQ(stats.stream(0).dramReads, 16u);
    EXPECT_EQ(l2->accesses(), 16u);
    EXPECT_EQ(l2->hits(), 0u);
    EXPECT_DOUBLE_EQ(l2->hitRate(), 0.0);
    EXPECT_DOUBLE_EQ(l2->hitRate(), stats.stream(0).l2HitRate());
    EXPECT_EQ(l2->fillsCompleted(), 16u);
}

TEST_F(L2Fixture, HitRateMatchesStreamStatsWithMerges)
{
    // Three concurrent requests for one line: a primary miss plus two
    // MSHR merges (which never probe the tag array), then a real hit.
    Cycle now = 0;
    for (uint64_t k = 1; k <= 3; ++k) {
        MemRequest req;
        req.line = 0x5000;
        req.stream = 0;
        req.smId = 0;
        req.completionKey = k;
        ASSERT_TRUE(l2->submit(req, now));
    }
    runUntilIdle(now);
    MemRequest req;
    req.line = 0x5000;
    req.stream = 0;
    req.smId = 0;
    req.completionKey = 4;
    ASSERT_TRUE(l2->submit(req, now));
    runUntilIdle(now);

    EXPECT_EQ(stats.stream(0).l2Accesses, 4u);
    EXPECT_EQ(stats.stream(0).l2MshrMerges, 2u);
    EXPECT_EQ(stats.stream(0).l2Hits, 1u);
    EXPECT_EQ(l2->mergedAccesses(), 2u);
    EXPECT_EQ(l2->accesses(), stats.stream(0).l2Accesses);
    EXPECT_EQ(l2->hits(), stats.stream(0).l2Hits);
    EXPECT_DOUBLE_EQ(l2->hitRate(), stats.stream(0).l2HitRate());
}

TEST(L2InterimEviction, DirtyVictimChargedOnceAtFill)
{
    // Directed eviction sequence through a 1-bank, 1-set, 2-way L2:
    //   write X        -> X resident dirty after its fill
    //   read A         -> miss installs A's tag, fill in flight
    //   read X         -> hit, X becomes MRU
    //   read B         -> miss evicts clean A (the interim eviction)
    //   A's fill       -> re-installs A, evicting dirty X: exactly one
    //                     writeback, charged to the filling stream
    // The old path could evict a second dirty victim here and charge
    // dramWrites against the original request cycle.
    L2Config cfg;
    cfg.numBanks = 1;
    cfg.bankGeometry = {2 * kLineBytes, 2, kLineBytes};
    cfg.l2Latency = 10;
    cfg.icntLatency = 2;
    cfg.icntBytesPerCycle = 1024;
    cfg.dramBytesPerCycle = 64;
    cfg.dramLatency = 50;
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    std::vector<MemRequest> responses;
    l2.setResponseHandler(
        [&](const MemRequest &r) { responses.push_back(r); });

    Cycle now = 0;
    auto stepFor = [&](Cycle cycles) {
        const Cycle end = now + cycles;
        while (now < end) {
            l2.step(++now);
        }
    };
    auto drain = [&] {
        const Cycle end = now + 10000;
        while (!l2.idle() && now < end) {
            l2.step(++now);
        }
    };

    MemRequest wx;
    wx.line = 0x2000;
    wx.write = true;
    wx.stream = 0;
    wx.smId = 0;
    ASSERT_TRUE(l2.submit(wx, now));
    drain();
    ASSERT_EQ(stats.stream(0).dramReads, 1u);   // fetch on write-allocate
    ASSERT_EQ(stats.stream(0).dramWrites, 0u);

    MemRequest ra;
    ra.line = 0x0;
    ra.stream = 0;
    ra.smId = 0;
    ra.completionKey = 1;
    ASSERT_TRUE(l2.submit(ra, now));
    stepFor(10);   // A's tag installed, fill still in flight
    ASSERT_EQ(stats.stream(0).dramReads, 2u);

    MemRequest rx = ra;
    rx.line = 0x2000;
    rx.completionKey = 2;
    ASSERT_TRUE(l2.submit(rx, now));
    stepFor(10);   // X hit: X is now MRU, A is LRU
    ASSERT_EQ(stats.stream(0).l2Hits, 1u);

    MemRequest rb = ra;
    rb.line = 0x1000;
    rb.completionKey = 3;
    ASSERT_TRUE(l2.submit(rb, now));
    stepFor(10);   // B's miss evicts clean A between A's miss and fill
    ASSERT_EQ(stats.stream(0).dramReads, 3u);
    ASSERT_EQ(stats.stream(0).dramWrites, 0u);   // A was clean

    drain();
    EXPECT_EQ(responses.size(), 3u);
    // A's fill re-installed A and evicted dirty X: one writeback, once.
    EXPECT_EQ(stats.stream(0).dramWrites, 1u);
    EXPECT_EQ(l2.fillsCompleted(), 3u);
    EXPECT_EQ(l2.accesses(), 4u);
    EXPECT_EQ(l2.hits(), 1u);
    EXPECT_DOUBLE_EQ(l2.hitRate(), stats.stream(0).l2HitRate());
    EXPECT_TRUE(l2.idle());
}

} // namespace
} // namespace crisp
