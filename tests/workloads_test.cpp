#include <gtest/gtest.h>

#include <map>

#include "workloads/compute.hpp"
#include "workloads/oracle.hpp"
#include "workloads/scenes.hpp"

namespace crisp
{
namespace
{

/** Opcode histogram over a kernel's first CTA. */
std::map<OpClass, uint64_t>
opMix(const KernelInfo &k)
{
    std::map<OpClass, uint64_t> mix;
    const CtaTrace cta = k.source->generate(0);
    for (const auto &w : cta.warps) {
        for (const auto &in : w.instrs) {
            mix[opcodeClass(in.opcode)]++;
        }
    }
    return mix;
}

TEST(ComputeKernels, VioIsManySmallKernels)
{
    AddressSpace heap;
    const auto kernels = buildVio(heap, /*frames=*/1);
    // 2 pyramid levels x 4 stages.
    EXPECT_EQ(kernels.size(), 8u);
    for (const auto &k : kernels) {
        EXPECT_GT(k.numCtas(), 0u);
        EXPECT_LE(k.numCtas(), 400u);  // "many small kernels"
        EXPECT_FALSE(k.name.empty());
        const CtaTrace cta = k.source->generate(0);
        EXPECT_GT(cta.totalInstrs(), 0u);
    }
    // Two frames double the kernel count.
    EXPECT_EQ(buildVio(heap, 2).size(), 16u);
}

TEST(ComputeKernels, VioMemoryAddressesStayInRegion)
{
    AddressSpace heap;
    const Addr start = heap.allocatedEnd();
    const auto kernels = buildVio(heap, 1);
    const Addr end = heap.allocatedEnd();
    for (const auto &k : kernels) {
        for (uint32_t c : {0u, k.numCtas() - 1}) {
            const CtaTrace cta = k.source->generate(c);
            for (const auto &w : cta.warps) {
                for (const auto &in : w.instrs) {
                    for (Addr a : in.addrs) {
                        if (opcodeClass(in.opcode) == OpClass::MemGlobal) {
                            EXPECT_GE(a, start);
                            EXPECT_LT(a, end);
                        }
                    }
                }
            }
        }
    }
}

TEST(ComputeKernels, HoloIsComputeBound)
{
    AddressSpace heap;
    const auto kernels = buildHolo(heap);
    ASSERT_FALSE(kernels.empty());
    const auto mix = opMix(kernels[0]);
    const uint64_t alu = mix.count(OpClass::FP32)
        ? mix.at(OpClass::FP32)
        : 0;
    const uint64_t sfu =
        mix.count(OpClass::SFU) ? mix.at(OpClass::SFU) : 0;
    const uint64_t mem = mix.count(OpClass::MemGlobal)
        ? mix.at(OpClass::MemGlobal)
        : 0;
    // Heavily compute-bound: ALU+SFU dwarf memory operations.
    EXPECT_GT(alu + sfu, 20 * mem);
    EXPECT_GT(sfu, 0u);  // sin/cos phase math
}

TEST(ComputeKernels, NnUsesSharedMemoryAndTensorOps)
{
    AddressSpace heap;
    const auto kernels = buildNn(heap);
    ASSERT_EQ(kernels.size(), 3u);
    for (const auto &k : kernels) {
        EXPECT_GE(k.smemPerCta, 16u * 1024);
        EXPECT_GE(k.regsPerThread, 48u);
        // Small-batch network: the grid cannot fill a 46-SM GPU.
        EXPECT_LT(k.numCtas(), 46u);
        const auto mix = opMix(k);
        EXPECT_GT(mix.at(OpClass::Tensor), 0u);
        EXPECT_GT(mix.at(OpClass::MemShared), 0u);
        EXPECT_GT(mix.at(OpClass::Barrier), 0u);
    }
}

TEST(ComputeKernels, TracesAreDeterministic)
{
    AddressSpace heap_a;
    AddressSpace heap_b;
    const auto ka = buildHolo(heap_a, 1);
    const auto kb = buildHolo(heap_b, 1);
    const CtaTrace a = ka[0].source->generate(3);
    const CtaTrace b = kb[0].source->generate(3);
    ASSERT_EQ(a.totalInstrs(), b.totalInstrs());
    for (size_t w = 0; w < a.warps.size(); ++w) {
        for (size_t i = 0; i < a.warps[w].instrs.size(); ++i) {
            EXPECT_EQ(a.warps[w].instrs[i].opcode,
                      b.warps[w].instrs[i].opcode);
            EXPECT_EQ(a.warps[w].instrs[i].addrs,
                      b.warps[w].instrs[i].addrs);
        }
    }
}

TEST(ComputeKernels, GatherPatternIsIrregular)
{
    ComputeKernelDesc d;
    d.name = "gather";
    d.ctas = 1;
    d.threadsPerCta = 32;
    d.loads = {{MemPatternKind::Gather, 0x100000, 1 << 20, 4, 1, 32}};
    const KernelInfo k = buildComputeKernel(d);
    const CtaTrace cta = k.source->generate(0);
    const auto &in = cta.warps[0].instrs[0];
    ASSERT_EQ(in.addrs.size(), 32u);
    // Gathered addresses are not monotonically increasing.
    bool monotone = true;
    for (size_t i = 1; i < in.addrs.size(); ++i) {
        monotone &= in.addrs[i] >= in.addrs[i - 1];
    }
    EXPECT_FALSE(monotone);
}

TEST(ComputeKernels, StreamingPatternCoalesces)
{
    ComputeKernelDesc d;
    d.name = "stream";
    d.ctas = 1;
    d.threadsPerCta = 32;
    d.loads = {{MemPatternKind::Streaming, 0x200000, 1 << 20, 4, 1, 32}};
    const KernelInfo k = buildComputeKernel(d);
    const CtaTrace cta = k.source->generate(0);
    const auto lines = coalesceToLines(cta.warps[0].instrs[0]);
    EXPECT_LE(lines.size(), 2u);
}

TEST(Scenes, AllBuildersAreDeterministic)
{
    for (const std::string &name : allSceneNames()) {
        AddressSpace ha;
        AddressSpace hb;
        const Scene a = buildSceneByName(name, ha);
        const Scene b = buildSceneByName(name, hb);
        ASSERT_EQ(a.draws.size(), b.draws.size()) << name;
        for (size_t i = 0; i < a.draws.size(); ++i) {
            EXPECT_EQ(a.draws[i].name, b.draws[i].name);
            EXPECT_EQ(a.draws[i].instanceCount, b.draws[i].instanceCount);
        }
    }
}

TEST(Scenes, ShaderStructureMatchesPaper)
{
    AddressSpace heap;
    // SPL: basic shading, a single texture per drawcall.
    const Scene spl = buildSponza(heap, false);
    for (const auto &d : spl.draws) {
        EXPECT_EQ(d.material->kind, ShaderKind::Basic);
        EXPECT_EQ(d.material->textures.size(), 1u);
    }
    // SPH: the same drawcalls with 8-map PBR materials.
    AddressSpace heap2;
    const Scene sph = buildSponza(heap2, true);
    ASSERT_EQ(sph.draws.size(), spl.draws.size());
    for (const auto &d : sph.draws) {
        EXPECT_EQ(d.material->kind, ShaderKind::Pbr);
        EXPECT_EQ(d.material->textures.size(), 8u);
    }
    // IT uses instancing with a layered texture.
    AddressSpace heap3;
    const Scene it = buildPlanets(heap3, 32);
    bool has_instanced = false;
    for (const auto &d : it.draws) {
        if (d.instanceCount > 1) {
            has_instanced = true;
            EXPECT_EQ(d.instanceModels.size(), d.instanceCount);
            EXPECT_GT(d.material->textures[0]->layers(), 1u);
            EXPECT_NE(d.instanceBufAddr, 0u);
        }
    }
    EXPECT_TRUE(has_instanced);
}

TEST(OracleTest, Deterministic)
{
    DrawcallReport r;
    r.drawIndex = 3;
    r.vsInvocations = 10000;
    const HardwareOracle oracle;
    EXPECT_DOUBLE_EQ(oracle.vsInvocations(r), oracle.vsInvocations(r));
}

TEST(OracleTest, VsInvocationsTrackReport)
{
    const HardwareOracle oracle;
    DrawcallReport r;
    r.drawIndex = 1;
    r.vsInvocations = 50000;
    const double hw = oracle.vsInvocations(r);
    EXPECT_NEAR(hw, 50000.0, 50000.0 * 0.05);
}

TEST(OracleTest, FrameTimeScalesWithWork)
{
    const HardwareOracle oracle;
    const GpuConfig gpu = GpuConfig::rtx3070();
    RenderSubmission small;
    DrawcallReport r;
    r.drawIndex = 0;
    r.vsInvocations = 1000;
    r.vsThreadsLaunched = 1024;
    r.fragments = 10000;
    r.texturesPerFragment = 1;
    small.reports.push_back(r);

    RenderSubmission big = small;
    big.reports[0].fragments = 1000000;
    big.reports[0].vsThreadsLaunched = 102400;
    big.reports[0].vsInvocations = 100000;

    EXPECT_GT(oracle.frameTimeMs(big, gpu), oracle.frameTimeMs(small, gpu));
    EXPECT_GT(oracle.frameTimeMs(small, gpu), 0.0);
}

TEST(OracleTest, MobileGpuSlowerThanDesktop)
{
    const HardwareOracle oracle;
    RenderSubmission sub;
    DrawcallReport r;
    r.drawIndex = 0;
    r.vsInvocations = 10000;
    r.vsThreadsLaunched = 10240;
    r.fragments = 500000;
    r.texturesPerFragment = 8;
    sub.reports.push_back(r);
    EXPECT_GT(oracle.frameTimeMs(sub, GpuConfig::jetsonOrin()),
              oracle.frameTimeMs(sub, GpuConfig::rtx3070()));
}


TEST(ComputeKernels, TimewarpGathersFromRenderedFrame)
{
    AddressSpace heap;
    const Addr frame = heap.alloc(4ull * 640 * 360);
    const auto kernels = buildTimewarp(heap, frame, 640, 360);
    ASSERT_EQ(kernels.size(), 2u);  // one pass per eye
    for (const auto &k : kernels) {
        EXPECT_GT(k.numCtas(), 0u);
        const CtaTrace cta = k.source->generate(0);
        bool reads_frame = false;
        bool writes_output = false;
        for (const auto &w : cta.warps) {
            for (const auto &in : w.instrs) {
                if (in.opcode == Opcode::LDG) {
                    for (Addr a : in.addrs) {
                        reads_frame |= a >= frame &&
                                       a < frame + 4ull * 640 * 360;
                    }
                }
                writes_output |= in.opcode == Opcode::STG;
            }
        }
        EXPECT_TRUE(reads_frame) << "ATW must sample the rendered frame";
        EXPECT_TRUE(writes_output);
    }
}

TEST(ComputeKernels, TimewarpGatherIsIrregular)
{
    AddressSpace heap;
    const Addr frame = heap.alloc(4ull * 320 * 180);
    const auto kernels = buildTimewarp(heap, frame, 320, 180);
    const CtaTrace cta = kernels[0].source->generate(0);
    // Distortion-corrected sampling: per-warp loads span multiple lines.
    for (const auto &w : cta.warps) {
        for (const auto &in : w.instrs) {
            if (in.opcode == Opcode::LDG) {
                EXPECT_GT(coalesceToLines(in).size(), 2u);
                return;
            }
        }
    }
    FAIL() << "no gather load found";
}

} // namespace
} // namespace crisp
