#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "integrity/fault_injector.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

GpuConfig
smallGpu()
{
    GpuConfig cfg;
    cfg.name = "small";
    cfg.numSms = 4;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {128 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

RenderSubmission
smallFrame(AddressSpace &heap)
{
    static std::vector<std::unique_ptr<Scene>> keep_alive;
    keep_alive.push_back(
        std::make_unique<Scene>(buildSceneByName("PT", heap)));
    PipelineConfig pc;
    pc.width = 160;
    pc.height = 90;
    RenderPipeline pipe(pc, heap);
    return pipe.submit(*keep_alive.back());
}

/** Enqueue a small memory-heavy compute workload on @p stream. */
void
enqueueVio(Gpu &gpu, StreamId stream, AddressSpace &heap)
{
    for (const KernelInfo &k : buildVio(heap, 1, 160, 120)) {
        gpu.enqueueKernel(stream, k);
    }
}

bool
hasCheck(const integrity::HangReport &report, const std::string &check)
{
    for (const auto &v : report.violations) {
        if (v.check == check) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// Fault/detector matrix: every injected fault class trips exactly the
// detector built for it, and latency faults trip nothing.
// ---------------------------------------------------------------------

// A dropped DRAM fill leaves its L2 MSHR entry allocated forever: the
// age-based leak scan must name the leaked line, the owning bank, and
// the SMs waiting on it, within one watchdog interval of the entry
// passing the leak age.
TEST(FaultMatrixTest, DroppedFillIsCaughtByMshrLeakScan)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::FaultConfig fc;
    fc.dropFillProb = 1.0;
    fc.maxDroppedFills = 1;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);

    integrity::RunOptions opts;
    opts.checkInterval = 500;
    opts.mshrLeakAge = 2000;
    const auto r = gpu.run(10'000'000ull, opts);

    ASSERT_FALSE(r.completed);
    ASSERT_TRUE(r.hang.has_value());
    EXPECT_EQ(r.hang->reason, "invariant violation: mshr-leak");
    for (const auto &v : r.hang->violations) {
        EXPECT_EQ(v.check, "mshr-leak") << v.detail;
    }

    ASSERT_EQ(inj.injections().size(), 1u);
    EXPECT_EQ(inj.injections()[0].kind, "drop-fill");
    const Addr dropped_line = inj.injections()[0].line;

    // The report names the dropped request's line in an L2 leak row.
    bool named = false;
    for (const auto &leak : r.hang->mshrLeaks) {
        if (leak.level == "L2" && leak.line == dropped_line) {
            named = true;
            EXPECT_FALSE(leak.smIds.empty());
        }
    }
    EXPECT_TRUE(named);

    // Detected within one watchdog interval of the entry aging out.
    EXPECT_LE(r.hang->detectedAt, inj.injections()[0].cycle +
                                      opts.mshrLeakAge +
                                      opts.checkInterval);

    const std::string text = r.hang->render();
    EXPECT_NE(text.find("CRISP integrity report"), std::string::npos);
    EXPECT_NE(text.find("mshr-leak"), std::string::npos);
}

// A dropped SM response breaks read conservation (accepted != delivered
// + outstanding) the moment it happens: detected at the next check tick,
// long before any age-based scan would fire.
TEST(FaultMatrixTest, DroppedResponseIsCaughtByConservation)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::FaultConfig fc;
    fc.dropResponseProb = 1.0;
    fc.maxDroppedResponses = 1;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);

    integrity::RunOptions opts;
    opts.checkInterval = 500;
    const auto r = gpu.run(10'000'000ull, opts);

    ASSERT_FALSE(r.completed);
    ASSERT_TRUE(r.hang.has_value());
    EXPECT_EQ(r.hang->reason, "invariant violation: mem-conservation");
    for (const auto &v : r.hang->violations) {
        EXPECT_EQ(v.check, "mem-conservation") << v.detail;
    }
    EXPECT_TRUE(r.hang->mshrLeaks.empty());

    ASSERT_EQ(inj.injections().size(), 1u);
    EXPECT_EQ(inj.injections()[0].kind, "drop-response");
    EXPECT_LE(r.hang->detectedAt,
              inj.injections()[0].cycle + opts.checkInterval);
}

// Latency faults are legal behavior (a slow machine is not a broken
// machine): delayed fills and responses must trip no detector and the
// run must still complete.
TEST(FaultMatrixTest, DelaysNeverTripAnyDetector)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::FaultConfig fc;
    fc.delayFillProb = 1.0;
    fc.fillDelay = 400;
    fc.maxDelayedFills = 25;
    fc.delayResponseProb = 1.0;
    fc.responseDelay = 400;
    fc.maxDelayedResponses = 25;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);

    integrity::RunOptions opts;
    opts.checkInterval = 64;
    const auto r = gpu.run(500'000'000ull, opts);

    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());
    EXPECT_GE(inj.injections().size(), 1u);
}

// Delays *longer than the leak age* still must not trip the leak scan:
// a delayed fill or response is in flight the whole time, and an MSHR
// entry with live traffic is starved, not leaked — the scan requires
// orphanhood, not just age. (Real starvation of this magnitude happens
// under DRAM saturation; see the ray-traversal scenario.) The progress
// watchdog is parked high so the leak check is the only detector armed
// at this timescale.
TEST(FaultMatrixTest, DelaysBeyondLeakAgeAreStarvationNotLeaks)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::FaultConfig fc;
    fc.delayFillProb = 1.0;
    fc.fillDelay = 8000;
    fc.maxDelayedFills = 25;
    fc.delayResponseProb = 1.0;
    fc.responseDelay = 8000;
    fc.maxDelayedResponses = 25;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);

    integrity::RunOptions opts;
    opts.checkInterval = 64;
    opts.mshrLeakAge = 2000;        // far below the injected delays
    opts.hangThreshold = 50'000;    // progress watchdog out of the way
    const auto r = gpu.run(500'000'000ull, opts);

    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());
    EXPECT_GE(inj.injections().size(), 1u);
}

// A frozen issue stage stops one SM's CTAs from ever committing while
// everything else drains: the forward-progress watchdog must fire, and
// the report must single out the frozen SM.
TEST(FaultMatrixTest, FrozenSmIsCaughtByWatchdog)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    enqueueVio(gpu, s, heap);

    integrity::FaultConfig fc;
    fc.freezeSm = 1;
    fc.freezeAtCycle = 500;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);

    integrity::RunOptions opts;
    opts.checkInterval = 256;
    opts.hangThreshold = 4000;
    const auto r = gpu.run(10'000'000ull, opts);

    ASSERT_FALSE(r.completed);
    ASSERT_TRUE(r.hang.has_value());
    EXPECT_NE(r.hang->reason.find("no forward progress"),
              std::string::npos);
    EXPECT_TRUE(r.hang->violations.empty());

    ASSERT_EQ(r.hang->sms.size(), 4u);
    const auto &frozen = r.hang->sms[1];
    EXPECT_TRUE(frozen.issueFrozen);
    EXPECT_GT(frozen.activeWarps, 0u);
    EXPECT_EQ(frozen.dominantStall, "frozen");
    for (uint32_t i : {0u, 2u, 3u}) {
        EXPECT_FALSE(r.hang->sms[i].issueFrozen);
    }
}

// A corrupted dependency id makes a stream's front kernel wait on a
// kernel that can never complete: the stream-liveness checker must name
// the stream, the stuck kernel, and the bogus id.
TEST(FaultMatrixTest, CorruptedDependencyIsCaughtByStreamLiveness)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");

    integrity::FaultConfig fc;
    fc.corruptNthDependency = 1;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);
    enqueueVio(gpu, s, heap);

    integrity::RunOptions opts;
    opts.checkInterval = 500;
    const auto r = gpu.run(10'000'000ull, opts);

    ASSERT_FALSE(r.completed);
    ASSERT_TRUE(r.hang.has_value());
    EXPECT_EQ(r.hang->reason, "invariant violation: stream-liveness");
    ASSERT_TRUE(hasCheck(*r.hang, "stream-liveness"));
    for (const auto &v : r.hang->violations) {
        EXPECT_EQ(v.check, "stream-liveness") << v.detail;
    }

    ASSERT_EQ(r.hang->streams.size(), 1u);
    EXPECT_EQ(r.hang->streams[0].blockingDep,
              integrity::FaultInjector::kCorruptDependencyId);
    EXPECT_GT(r.hang->streams[0].queuedKernels, 0u);
}

// ---------------------------------------------------------------------
// False-positive guard: a clean concurrent render+compute run, audited
// on every single cycle, never trips a detector under any policy.
// ---------------------------------------------------------------------

TEST(CleanRunTest, ConcurrentFrameNeverTripsAtIntervalOne)
{
    AddressSpace heap;
    Gpu gpu(smallGpu());
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId cmp = gpu.createStream("compute");
    const RenderSubmission frame = smallFrame(heap);
    submitFrame(gpu, gfx, frame);
    AddressSpace cheap(0x8000'0000ull);
    enqueueVio(gpu, cmp, cheap);

    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    part.priorityStream = gfx;
    gpu.setPartition(part);

    integrity::RunOptions opts;
    opts.checkInterval = 1;
    const auto r = gpu.run(500'000'000ull, opts);

    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(r.hang.has_value());
}

// Watchdog determinism: the integrity layer at interval 1 must not
// perturb the simulation itself.
TEST(CleanRunTest, WatchdogDoesNotChangeSimulatedCycles)
{
    AddressSpace heap_a(0x8000'0000ull);
    Gpu plain(smallGpu());
    const StreamId sa = plain.createStream("compute");
    enqueueVio(plain, sa, heap_a);
    const auto ra = plain.run(500'000'000ull);

    AddressSpace heap_b(0x8000'0000ull);
    Gpu watched(smallGpu());
    const StreamId sb = watched.createStream("compute");
    enqueueVio(watched, sb, heap_b);
    integrity::RunOptions opts;
    opts.checkInterval = 1;
    const auto rb = watched.run(500'000'000ull, opts);

    ASSERT_TRUE(ra.completed);
    ASSERT_TRUE(rb.completed);
    EXPECT_EQ(ra.cycles, rb.cycles);
}

// ---------------------------------------------------------------------
// Enqueue/partition validation (the integrity layer's front door): bad
// arguments die loudly at the call site instead of hanging the run.
// ---------------------------------------------------------------------

TEST(ValidationDeathTest, EnqueueAfterRejectsUnknownDependency)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");
    const std::vector<KernelInfo> kernels = buildVio(heap, 1, 160, 120);
    EXPECT_EXIT(gpu.enqueueKernelAfter(s, kernels[0], 1234u),
                ::testing::ExitedWithCode(1), "never enqueued");
}

TEST(ValidationDeathTest, DependencyFromAnotherStreamIsRejected)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId a = gpu.createStream("a");
    const StreamId b = gpu.createStream("b");
    const std::vector<KernelInfo> kernels = buildVio(heap, 1, 160, 120);
    const KernelId on_a = gpu.enqueueKernel(a, kernels[0]);
    EXPECT_EXIT(gpu.enqueueKernelAfter(b, kernels[1], on_a),
                ::testing::ExitedWithCode(1), "never enqueued");
}

TEST(ValidationDeathTest, SmIndexOutOfRangeIsFatal)
{
    Gpu gpu(smallGpu());
    EXPECT_EXIT(gpu.sm(99), ::testing::ExitedWithCode(1), "out of range");
}

TEST(ValidationDeathTest, PartitionSharesAboveOneAreFatal)
{
    Gpu gpu(smallGpu());
    const StreamId a = gpu.createStream("a");
    const StreamId b = gpu.createStream("b");
    PartitionConfig part;
    part.policy = PartitionPolicy::Mps;
    part.share[a] = 0.7;
    part.share[b] = 0.6;
    EXPECT_EXIT(gpu.setPartition(part), ::testing::ExitedWithCode(1),
                "sum to");
}

TEST(ValidationDeathTest, PartitionNamingUnknownStreamIsFatal)
{
    Gpu gpu(smallGpu());
    gpu.createStream("a");
    PartitionConfig part;
    part.policy = PartitionPolicy::Mps;
    part.share[42] = 0.5;
    EXPECT_EXIT(gpu.setPartition(part), ::testing::ExitedWithCode(1),
                "does not exist");
}

TEST(ValidationDeathTest, OnHangPanicAbortsWithReport)
{
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(smallGpu());
    const StreamId s = gpu.createStream("compute");

    integrity::FaultConfig fc;
    fc.corruptNthDependency = 1;
    integrity::FaultInjector inj(fc);
    gpu.setFaultInjector(&inj);
    enqueueVio(gpu, s, heap);

    integrity::RunOptions opts;
    opts.checkInterval = 500;
    opts.onHang = integrity::RunOptions::OnHang::Panic;
    EXPECT_DEATH(gpu.run(10'000'000ull, opts), "stream-liveness");
}

} // namespace
} // namespace crisp
