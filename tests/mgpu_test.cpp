/**
 * @file
 * crisp::mgpu tests: remote round-trip accounting against the hand
 * model, page-migration conservation, thread-count determinism on a
 * two-GPU scenario, and the multi-GPU scenario schema (num_gpus,
 * placement, per-stream/per-buffer device fields, Poisson arrivals).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mgpu/multi_gpu.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"
#include "workloads/compute.hpp"

using namespace crisp;

namespace
{

/** A small streaming-read kernel over @p base. */
KernelInfo
readerKernel(Addr base, uint64_t region_bytes, uint32_t iterations = 4)
{
    ComputeKernelDesc d;
    d.name = "reader";
    d.ctas = 8;
    d.threadsPerCta = 64;
    d.regsPerThread = 32;
    d.iterations = iterations;
    MemPattern p;
    p.kind = MemPatternKind::Streaming;
    p.base = base;
    p.regionBytes = region_bytes;
    p.accessBytes = 16;
    p.count = 2;
    d.loads.push_back(p);
    return buildComputeKernel(d);
}

/** Two small devices so the micro tests stay fast. */
mgpu::MultiGpuConfig
smallDual()
{
    mgpu::MultiGpuConfig cfg = mgpu::MultiGpuConfig::dualRtx3070();
    cfg.gpu.numSms = 4;
    cfg.gpu.finalize();
    return cfg;
}

/** Run a reader on device 1 over a buffer homed on @p home_device.
 *  Audits at cadence 1 — every conservation identity must hold every
 *  cycle, remote traffic in flight included. */
mgpu::MultiGpu::RunResult
runReader(mgpu::MultiGpu &machine, uint32_t home_device,
          uint64_t bytes = 1 << 20)
{
    AddressSpace heap = machine.heapFor(home_device);
    const Addr base = heap.alloc(bytes);
    Gpu &dev1 = machine.device(1);
    const StreamId s = dev1.createStream("compute");
    dev1.enqueueKernel(s, readerKernel(base, bytes));
    return machine.run(4'000'000, 1);
}

} // namespace

TEST(MgpuFabric, StaticWindowOwnership)
{
    mgpu::MultiGpu machine(smallDual());
    const mgpu::InterGpuFabric &fabric = machine.fabric();
    EXPECT_EQ(fabric.ownerOf(0), 0u);
    EXPECT_EQ(fabric.ownerOf(machine.windowBase(1)), 1u);
    EXPECT_EQ(fabric.ownerOf(machine.windowBase(1) - 128), 0u);
    // The last device owns everything above its window base.
    EXPECT_EQ(fabric.ownerOf(~0ull), 1u);
}

TEST(MgpuFabric, RemoteRoundTripAccounting)
{
    // Same kernel, local vs remote buffer: the remote run pays at least
    // one extra link traversal on the makespan, and its traffic matches
    // the wire model exactly.
    mgpu::MultiGpu local_machine(smallDual());
    const auto local = runReader(local_machine, 1);
    ASSERT_TRUE(local.completed);
    EXPECT_TRUE(local.violations.empty());
    EXPECT_EQ(local_machine.fabric().requestsAccepted(), 0u);

    mgpu::MultiGpu remote_machine(smallDual());
    const auto remote = runReader(remote_machine, 0);
    ASSERT_TRUE(remote.completed);
    EXPECT_TRUE(remote.violations.empty());

    const mgpu::InterGpuFabric &fabric = remote_machine.fabric();
    const uint64_t reqs = fabric.requestsAccepted();
    ASSERT_GT(reqs, 0u);
    EXPECT_GT(remote.cycles,
              local.cycles + fabric.config().linkLatency);

    // Drained: nothing in flight, every request delivered and answered.
    EXPECT_EQ(fabric.requestsInFlight(), 0u);
    EXPECT_EQ(fabric.responsesInFlight(), 0u);
    EXPECT_EQ(fabric.requestsDelivered(), reqs);
    EXPECT_EQ(fabric.responsesAccepted(), reqs);
    EXPECT_EQ(fabric.responsesDelivered(), reqs);

    // Wire model: a read request is one header, its response a header
    // plus the line payload.
    const mgpu::FabricConfig &fc = fabric.config();
    EXPECT_EQ(fabric.bytesTransferred(),
              reqs * fc.headerBytes + reqs * (fc.headerBytes + 128));

    // Per-stream counters pair with the fabric totals on both sides:
    // device 1's stream counted every remote access and response, and
    // device 0's L2 saw exactly the delivered requests for that stream.
    Gpu &dev1 = remote_machine.device(1);
    const StreamId s = remote_machine.config().streamIdStride;
    EXPECT_EQ(dev1.stats().stream(s).remoteAccesses, reqs);
    EXPECT_EQ(dev1.stats().stream(s).remoteResponses, reqs);
    EXPECT_EQ(remote_machine.device(0).stats().stream(s).l2Accesses, reqs);
}

TEST(MgpuFabric, PageMigrationConservation)
{
    mgpu::MultiGpuConfig cfg = smallDual();
    cfg.fabric.migrateAfter = 2;
    mgpu::MultiGpu machine(cfg);

    AddressSpace heap = machine.heapFor(0);
    const uint64_t bytes = 8192;  // Two 4 KiB pages in device 0's window.
    const Addr base = heap.alloc(bytes);
    Gpu &dev1 = machine.device(1);
    const StreamId s = dev1.createStream("compute");
    dev1.enqueueKernel(s, readerKernel(base, bytes, 16));
    const auto r = machine.run(4'000'000, 1);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.violations.empty());

    const mgpu::InterGpuFabric &fabric = machine.fabric();
    ASSERT_GT(fabric.pageMigrations(), 0u);
    EXPECT_LE(fabric.pageMigrations(), 2u);
    EXPECT_EQ(fabric.migratedBytes(),
              fabric.pageMigrations() * cfg.fabric.pageBytes);
    // The hot page now belongs to the toucher; the per-stream counter
    // attributes the migrations it triggered.
    EXPECT_EQ(fabric.ownerOf(base), 1u);
    EXPECT_EQ(dev1.stats().stream(s).pageMigrations,
              fabric.pageMigrations());
}

TEST(MgpuFabric, BoundedQueueRefusesThenDrains)
{
    // A one-entry request queue with a slow wire forces refusals; the
    // SMs park and retry, and the run still drains with every identity
    // intact (the cadence-1 audit would catch a lost request).
    mgpu::MultiGpuConfig cfg = smallDual();
    cfg.fabric.requestQueueCapacity = 1;
    cfg.fabric.linkBytesPerCycle = 8.0;
    mgpu::MultiGpu machine(cfg);
    const auto r = runReader(machine, 0);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.violations.empty());
    EXPECT_GT(machine.fabric().requestsAccepted(), 0u);
    EXPECT_EQ(machine.fabric().requestsInFlight(), 0u);
}

namespace
{

/** Per-run fingerprint for the determinism test. */
struct RunPrint
{
    Cycle cycles = 0;
    std::vector<uint64_t> counters;

    bool
    operator==(const RunPrint &o) const
    {
        return cycles == o.cycles && counters == o.counters;
    }
};

RunPrint
runScenarioWithThreads(const scenario::Scenario &scn, uint32_t threads)
{
    mgpu::MultiGpuConfig cfg;
    cfg.numGpus = scn.gpu.numGpus;
    cfg.gpu = scenario::gpuConfigFor(scn);
    mgpu::MultiGpu machine(cfg);
    engine::EngineConfig ec;
    ec.threads = threads;
    machine.setEngine(ec);
    scenario::Materialized mat;
    const scenario::MultiSubmitResult sr =
        scenario::submitScenarioMulti(scn, machine, mat);
    const auto r = machine.run(50'000'000, 0);
    EXPECT_TRUE(r.completed);

    RunPrint print;
    print.cycles = r.cycles;
    StatsRegistry merged = machine.mergedStats();
    for (StreamId id : {sr.gfx, sr.cmp}) {
        const StreamStats &st = merged.stream(id);
        print.counters.push_back(st.instructions);
        print.counters.push_back(st.l1Accesses);
        print.counters.push_back(st.l2Accesses);
        print.counters.push_back(st.dramReads);
        print.counters.push_back(st.remoteAccesses);
        print.counters.push_back(st.remoteResponses);
    }
    print.counters.push_back(machine.fabric().requestsAccepted());
    print.counters.push_back(machine.fabric().bytesTransferred());
    return print;
}

} // namespace

TEST(MgpuDeterminism, ThreadCountsAgreeOnTwoGpuScenario)
{
    scenario::Scenario scn;
    scenario::ScenarioError err;
    ASSERT_TRUE(scenario::loadScenarioFile(
        std::string(CRISP_SCENARIO_DIR) + "/game_inference_mgpu.json", scn,
        err))
        << err.str();
    ASSERT_EQ(scn.gpu.numGpus, 2u);
    ASSERT_TRUE(scn.compute.schedule.poisson);

    const RunPrint t1 = runScenarioWithThreads(scn, 1);
    const RunPrint t2 = runScenarioWithThreads(scn, 2);
    const RunPrint t4 = runScenarioWithThreads(scn, 4);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t4);
}

TEST(MgpuSchedule, PoissonBasesAreSeededAndMonotonic)
{
    scenario::ScheduleNode s;
    s.bursts = 16;
    s.poisson = true;
    s.rateHz = 1000.0;
    s.seed = 42;
    const std::vector<Cycle> a = scenario::burstBases(s, 1000.0);
    const std::vector<Cycle> b = scenario::burstBases(s, 1000.0);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 16u);
    for (size_t i = 1; i < a.size(); ++i) {
        EXPECT_GE(a[i], a[i - 1]);
    }
    // The mean gap should be around core_clock/rate = 1e6 cycles; with
    // 16 samples allow a generous band.
    EXPECT_GT(a.back(), 2'000'000u);
    EXPECT_LT(a.back(), 100'000'000u);

    s.seed = 43;
    EXPECT_NE(scenario::burstBases(s, 1000.0), a);

    s.poisson = false;
    s.period = 500;
    const std::vector<Cycle> periodic = scenario::burstBases(s, 1000.0);
    for (size_t i = 0; i < periodic.size(); ++i) {
        EXPECT_EQ(periodic[i], i * 500);
    }
}

namespace
{

std::string
scenarioText(const std::string &gpu, const std::string &compute_extra,
             const std::string &schedule)
{
    return R"({
        "crisp_scenario": 1,
        "name": "t",
        "gpu": {)" + gpu + R"(},
        "compute": {
            "buffers": [{ "name": "b", "bytes": 65536)" + compute_extra +
           R"( }],
            "kernels": [{ "name": "k",
                          "loads": [{ "buffer": "b" }] }])" + schedule +
           R"(
        }
    })";
}

} // namespace

TEST(MgpuScenario, LoaderCoordinatesTable)
{
    struct Case
    {
        const char *label;
        std::string text;
        const char *needle;
    };
    const Case cases[] = {
        {"num_gpus zero", scenarioText(R"("num_gpus": 0)", "", ""),
         "num_gpus must be in [1, 8]"},
        {"num_gpus nine", scenarioText(R"("num_gpus": 9)", "", ""),
         "num_gpus must be in [1, 8]"},
        {"placement single-gpu",
         scenarioText(R"("placement": "split")", "", ""),
         "\"placement\" needs num_gpus > 1"},
        {"placement unknown",
         scenarioText(R"("num_gpus": 2, "placement": "sideways")", "", ""),
         "placement must be one of split|colocated|mig"},
        {"buffer device single-gpu",
         scenarioText("", R"(, "device": 0)", ""),
         "\"device\" needs gpu.num_gpus > 1"},
        {"buffer device out of range",
         scenarioText(R"("num_gpus": 2)", R"(, "device": 2)", ""),
         "device must be in [0, 1]"},
        {"arrivals with period",
         scenarioText(R"("num_gpus": 2)", "",
                      R"(,
            "schedule": { "bursts": 2, "period": 1000,
                          "arrivals": { "kind": "poisson",
                                        "rate_hz": 100 } })"),
         "\"arrivals\" and \"period\" are mutually exclusive"},
        {"arrivals missing rate",
         scenarioText("", "",
                      R"(,
            "schedule": { "bursts": 2,
                          "arrivals": { "kind": "poisson" } })"),
         "\"arrivals\" needs a \"rate_hz\""},
        {"arrivals unknown kind",
         scenarioText("", "",
                      R"(,
            "schedule": { "bursts": 2,
                          "arrivals": { "kind": "uniform",
                                        "rate_hz": 100 } })"),
         "kind must be one of poisson"},
    };
    for (const Case &c : cases) {
        scenario::Scenario scn;
        scenario::ScenarioError err;
        ASSERT_FALSE(scenario::loadScenarioText(c.text, "t.json", scn, err))
            << c.label;
        EXPECT_NE(err.message.find(c.needle), std::string::npos)
            << c.label << ": got \"" << err.message << "\"";
        EXPECT_GT(err.line, 0u) << c.label;
        EXPECT_GT(err.col, 0u) << c.label;
    }
}

TEST(MgpuScenario, PlacementResolvesDevices)
{
    const auto parse = [](const std::string &gpu,
                          const std::string &extra) {
        scenario::Scenario scn;
        scenario::ScenarioError err;
        const std::string text = scenarioText(gpu, extra, "");
        EXPECT_TRUE(scenario::loadScenarioText(text, "t.json", scn, err))
            << err.str();
        return scn;
    };

    const scenario::Scenario split =
        parse(R"("num_gpus": 2, "placement": "split")", "");
    EXPECT_EQ(split.gpu.placement, scenario::Placement::Split);
    mgpu::MultiGpuConfig cfg = smallDual();
    {
        mgpu::MultiGpu machine(cfg);
        scenario::Materialized mat;
        const auto sr = scenario::submitScenarioMulti(split, machine, mat);
        // Compute-only split scenario: the compute stream owns device 1.
        EXPECT_EQ(sr.cmpDevice, 1u);
        EXPECT_EQ(sr.gfx, kInvalidStream);
    }
    const scenario::Scenario colo =
        parse(R"("num_gpus": 2, "placement": "colocated")", "");
    EXPECT_EQ(colo.gpu.placement, scenario::Placement::Colocated);
    {
        mgpu::MultiGpu machine(cfg);
        scenario::Materialized mat;
        const auto sr = scenario::submitScenarioMulti(colo, machine, mat);
        EXPECT_EQ(sr.cmpDevice, 0u);
    }
    // A per-buffer device homes the allocation in that window even when
    // the stream runs elsewhere.
    const scenario::Scenario homed =
        parse(R"("num_gpus": 2)", R"(, "device": 0)");
    {
        mgpu::MultiGpu machine(cfg);
        scenario::Materialized mat;
        const auto sr = scenario::submitScenarioMulti(homed, machine, mat);
        EXPECT_EQ(sr.cmpDevice, 1u);
        const auto r = machine.run(4'000'000, 1);
        EXPECT_TRUE(r.completed);
        EXPECT_TRUE(r.violations.empty());
        EXPECT_GT(machine.fabric().requestsAccepted(), 0u);
    }
}
