// Equivalence pins for the hot-path rewrites.
//
// The SoA SetAssocCache and the open-addressed Mshr replaced slower
// reference structures (AoS line array with LRU scans; unordered_map
// plus an age deque). Both rewrites are required to be *byte-identical*
// in observable behaviour — the golden suite enforces that end-to-end,
// and these tests enforce it at the unit level by replaying long random
// operation sequences against reference models transcribed from the
// original implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "audit/audit.hpp"
#include "common/rng.hpp"
#include "gpu/gpu.hpp"
#include "mem/cache.hpp"
#include "mem/mshr.hpp"
#include "workloads/compute.hpp"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------------
// Reference cache: the original AoS implementation (lruPosition scans,
// per-line structs). Kept verbatim modulo naming so the SoA rewrite has
// a fixed semantic target.
// ---------------------------------------------------------------------

class RefCache
{
  public:
    explicit RefCache(const CacheGeometry &geom) : geom_(geom)
    {
        lines_.resize(static_cast<size_t>(geom_.numSets()) * geom_.ways);
    }

    CacheAccessResult
    access(Addr line, bool write, StreamId stream, DataClass cls,
           bool allocate_on_miss = true)
    {
        const bool sectored = geom_.sectorBytes != 0;
        uint8_t sector_bit = 0xff;
        if (sectored) {
            const uint32_t sector = static_cast<uint32_t>(
                line % geom_.lineBytes / geom_.sectorBytes);
            sector_bit = static_cast<uint8_t>(1u << sector);
            line -= line % geom_.lineBytes;
        }
        ++accesses_;
        const Addr tag = line / geom_.lineBytes;
        const uint32_t set = mapSet(line, stream);

        CacheAccessResult res;
        if (Line *hit_line = findLine(set, tag)) {
            if (sectored && !(hit_line->validSectors & sector_bit)) {
                ++sectorMisses_;
                res.sectorMiss = true;
                if (allocate_on_miss) {
                    hit_line->validSectors |= sector_bit;
                    hit_line->lastUse = ++useCounter_;
                    hit_line->dirty = hit_line->dirty || write;
                }
                return res;
            }
            ++hits_;
            res.hit = true;
            res.hitLruPos = lruPosition(set, hit_line);
            hit_line->lastUse = ++useCounter_;
            hit_line->dirty = hit_line->dirty || write;
            return res;
        }
        if (!allocate_on_miss) {
            return res;
        }
        installVictim(set, tag, write, stream, cls, sector_bit, res.evicted,
                      res.evictedLine, res.evictedDirty,
                      res.evictedValidSectors);
        return res;
    }

    CacheFillResult
    fill(Addr line, bool write, StreamId stream, DataClass cls)
    {
        const bool sectored = geom_.sectorBytes != 0;
        uint8_t sector_bit = 0xff;
        if (sectored) {
            const uint32_t sector = static_cast<uint32_t>(
                line % geom_.lineBytes / geom_.sectorBytes);
            sector_bit = static_cast<uint8_t>(1u << sector);
            line -= line % geom_.lineBytes;
        }
        ++fills_;
        const Addr tag = line / geom_.lineBytes;
        const uint32_t set = mapSet(line, stream);

        CacheFillResult res;
        if (Line *resident = findLine(set, tag)) {
            res.wasPresent = true;
            resident->validSectors |= sector_bit;
            resident->dirty = resident->dirty || write;
            return res;
        }
        installVictim(set, tag, write, stream, cls, sector_bit, res.evicted,
                      res.evictedLine, res.evictedDirty,
                      res.evictedValidSectors);
        return res;
    }

    bool
    probe(Addr line, StreamId stream) const
    {
        const Addr tag = line / geom_.lineBytes;
        return const_cast<RefCache *>(this)->findLine(mapSet(line, stream),
                                                      tag) != nullptr;
    }

    void
    invalidateStream(StreamId stream)
    {
        for (auto &l : lines_) {
            if (l.valid && l.stream == stream) {
                l = Line{};
            }
        }
    }

    void
    setStreamSetWindow(StreamId stream, uint32_t first, uint32_t count)
    {
        for (auto &w : windows_) {
            if (w.stream == stream) {
                w.first = first;
                w.count = count;
                return;
            }
        }
        windows_.push_back({stream, first, count});
    }

    void clearSetWindows() { windows_.clear(); }

    CacheComposition
    composition() const
    {
        CacheComposition comp;
        comp.totalLines = lines_.size();
        for (size_t i = 0; i < lines_.size(); ++i) {
            const Line &l = lines_[i];
            if (!l.valid) {
                continue;
            }
            ++comp.validLines;
            ++comp.byClass[static_cast<size_t>(l.cls)];
            if (const SetWindow *w = windowFor(l.stream)) {
                const uint32_t set = static_cast<uint32_t>(i / geom_.ways);
                if (set < w->first || set >= w->first + w->count) {
                    ++comp.strandedLines;
                }
            }
        }
        return comp;
    }

    uint64_t
    evictStreamOutsideWindow(StreamId stream, std::vector<Addr> *dirty)
    {
        const SetWindow *w = windowFor(stream);
        if (w == nullptr) {
            return 0;
        }
        uint64_t evicted = 0;
        for (size_t i = 0; i < lines_.size(); ++i) {
            Line &l = lines_[i];
            if (!l.valid || l.stream != stream) {
                continue;
            }
            const uint32_t set = static_cast<uint32_t>(i / geom_.ways);
            if (set >= w->first && set < w->first + w->count) {
                continue;
            }
            if (l.dirty && dirty != nullptr) {
                dirty->push_back(l.tag * geom_.lineBytes);
            }
            l = Line{};
            ++evicted;
        }
        return evicted;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t hits() const { return hits_; }
    uint64_t sectorMisses() const { return sectorMisses_; }
    uint64_t fills() const { return fills_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        uint64_t lastUse = 0;
        StreamId stream = kInvalidStream;
        DataClass cls = DataClass::Unknown;
        uint8_t validSectors = 0;
    };
    struct SetWindow
    {
        StreamId stream = kInvalidStream;
        uint32_t first = 0;
        uint32_t count = 0;
    };

    uint32_t
    mapSet(Addr line, StreamId stream) const
    {
        const uint32_t num_sets = geom_.numSets();
        const Addr blk = line / geom_.lineBytes;
        uint32_t set =
            static_cast<uint32_t>((blk ^ (blk >> 13)) % num_sets);
        if (const SetWindow *w = windowFor(stream)) {
            return w->first + set % w->count;
        }
        return set;
    }

    const SetWindow *
    windowFor(StreamId stream) const
    {
        for (const auto &w : windows_) {
            if (w.stream == stream && w.count > 0) {
                return &w;
            }
        }
        return nullptr;
    }

    Line *
    findLine(uint32_t set, Addr tag)
    {
        Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                return &base[w];
            }
        }
        return nullptr;
    }

    uint32_t
    lruPosition(uint32_t set, const Line *line) const
    {
        const Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
        uint32_t pos = 0;
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            if (&base[w] != line && base[w].valid &&
                base[w].lastUse > line->lastUse) {
                ++pos;
            }
        }
        return pos;
    }

    void
    installVictim(uint32_t set, Addr tag, bool write, StreamId stream,
                  DataClass cls, uint8_t sector_bit, bool &evicted,
                  Addr &evicted_line, bool &evicted_dirty,
                  uint8_t &evicted_sectors)
    {
        Line *base = &lines_[static_cast<size_t>(set) * geom_.ways];
        Line *victim = nullptr;
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
        if (victim == nullptr) {
            victim = base;
            for (uint32_t w = 1; w < geom_.ways; ++w) {
                if (base[w].lastUse < victim->lastUse) {
                    victim = &base[w];
                }
            }
            evicted = true;
            evicted_line = victim->tag * geom_.lineBytes;
            evicted_dirty = victim->dirty;
            evicted_sectors = victim->validSectors;
        }
        victim->valid = true;
        victim->dirty = write;
        victim->tag = tag;
        victim->lastUse = ++useCounter_;
        victim->stream = stream;
        victim->cls = cls;
        victim->validSectors = sector_bit;
    }

    CacheGeometry geom_;
    std::vector<Line> lines_;
    std::vector<SetWindow> windows_;
    uint64_t useCounter_ = 0;
    uint64_t accesses_ = 0;
    uint64_t hits_ = 0;
    uint64_t sectorMisses_ = 0;
    uint64_t fills_ = 0;
};

// ---------------------------------------------------------------------
// Reference MSHR: the original unordered_map + age-deque implementation.
// ---------------------------------------------------------------------

class RefMshr
{
  public:
    RefMshr(uint32_t num_entries, uint32_t max_targets)
        : numEntries_(num_entries), maxTargets_(max_targets)
    {
    }

    Mshr::Outcome
    allocate(Addr line, uint64_t key, Cycle now)
    {
        auto it = table_.find(line);
        if (it != table_.end()) {
            if (it->second.keys.size() >= maxTargets_) {
                return Mshr::Outcome::Stall;
            }
            it->second.keys.push_back(key);
            if (key != Mshr::kVoidKey) {
                ++responseTargets_;
            }
            ++mergedAllocations_;
            return Mshr::Outcome::Merged;
        }
        if (table_.size() >= numEntries_) {
            return Mshr::Outcome::Stall;
        }
        Entry entry;
        entry.keys.push_back(key);
        entry.allocatedAt = now;
        table_.emplace(line, std::move(entry));
        allocationOrder_.emplace_back(line, now);
        if (key != Mshr::kVoidKey) {
            ++responseTargets_;
        }
        ++primaryAllocations_;
        return Mshr::Outcome::NewEntry;
    }

    bool pending(Addr line) const { return table_.count(line) != 0; }

    std::vector<uint64_t>
    keysFor(Addr line) const
    {
        auto it = table_.find(line);
        return it == table_.end() ? std::vector<uint64_t>{}
                                  : it->second.keys;
    }

    bool
    wouldStall(Addr line) const
    {
        auto it = table_.find(line);
        if (it != table_.end()) {
            return it->second.keys.size() >= maxTargets_;
        }
        return table_.size() >= numEntries_;
    }

    std::vector<uint64_t>
    fill(Addr line)
    {
        auto it = table_.find(line);
        if (it == table_.end()) {
            return {};
        }
        std::vector<uint64_t> keys = std::move(it->second.keys);
        for (uint64_t key : keys) {
            if (key != Mshr::kVoidKey) {
                --responseTargets_;
            }
        }
        table_.erase(it);
        ++fillsServed_;
        return keys;
    }

    size_t entriesInUse() const { return table_.size(); }
    uint64_t responseTargets() const { return responseTargets_; }
    uint64_t primaryAllocations() const { return primaryAllocations_; }
    uint64_t mergedAllocations() const { return mergedAllocations_; }
    uint64_t fillsServed() const { return fillsServed_; }

    Cycle
    oldestAllocation() const
    {
        while (!allocationOrder_.empty()) {
            const auto &[line, at] = allocationOrder_.front();
            auto it = table_.find(line);
            if (it != table_.end() && it->second.allocatedAt == at) {
                return at;
            }
            allocationOrder_.pop_front();
        }
        return 0;
    }

    /** Entries sorted by allocation cycle (ties impossible in the test:
     *  the driver strictly increases the clock per allocation). */
    std::vector<Mshr::EntryInfo>
    entries() const
    {
        std::vector<Mshr::EntryInfo> out;
        for (const auto &[line, entry] : table_) {
            Mshr::EntryInfo info;
            info.line = line;
            info.allocatedAt = entry.allocatedAt;
            info.targets = static_cast<uint32_t>(entry.keys.size());
            info.keys = entry.keys;
            out.push_back(std::move(info));
        }
        std::sort(out.begin(), out.end(),
                  [](const Mshr::EntryInfo &a, const Mshr::EntryInfo &b) {
                      return a.allocatedAt < b.allocatedAt;
                  });
        return out;
    }

  private:
    struct Entry
    {
        std::vector<uint64_t> keys;
        Cycle allocatedAt = 0;
    };

    uint32_t numEntries_;
    uint32_t maxTargets_;
    uint64_t responseTargets_ = 0;
    uint64_t primaryAllocations_ = 0;
    uint64_t mergedAllocations_ = 0;
    uint64_t fillsServed_ = 0;
    std::unordered_map<Addr, Entry> table_;
    mutable std::deque<std::pair<Addr, Cycle>> allocationOrder_;
};

// ---------------------------------------------------------------------
// Cache equivalence over random operation sequences.
// ---------------------------------------------------------------------

class CacheEquivalenceSweep : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(CacheEquivalenceSweep, RandomSequenceMatchesReference)
{
    const CacheGeometry geom = GetParam();
    SetAssocCache cache(geom);
    RefCache ref(geom);
    Rng rng(0xc0ffee ^ geom.ways ^ geom.sizeBytes);

    const uint32_t grain =
        geom.sectorBytes != 0 ? geom.sectorBytes : geom.lineBytes;
    // Working set ~2x capacity so evictions are common.
    const uint64_t span = 2ull * geom.sizeBytes;
    const std::vector<StreamId> streams = {0, 1, 2};

    for (int op = 0; op < 20000; ++op) {
        const Addr addr = rng.nextBelow(span / grain) * grain;
        const StreamId stream =
            streams[rng.nextBelow(streams.size())];
        const DataClass cls =
            static_cast<DataClass>(rng.nextBelow(
                static_cast<uint64_t>(DataClass::NumClasses)));
        switch (rng.nextBelow(16)) {
        case 0: { // fill (miss completion or interim re-install)
            const bool write = rng.nextBelow(2) != 0;
            const auto a = cache.fill(addr, write, stream, cls);
            const auto b = ref.fill(addr, write, stream, cls);
            EXPECT_EQ(a.wasPresent, b.wasPresent);
            EXPECT_EQ(a.evicted, b.evicted);
            EXPECT_EQ(a.evictedLine, b.evictedLine);
            EXPECT_EQ(a.evictedDirty, b.evictedDirty);
            EXPECT_EQ(a.evictedValidSectors, b.evictedValidSectors);
            break;
        }
        case 1: { // probe
            EXPECT_EQ(cache.probe(addr, stream), ref.probe(addr, stream));
            break;
        }
        case 2: { // invalidate one stream
            cache.invalidateStream(stream);
            ref.invalidateStream(stream);
            break;
        }
        case 3: { // set-window churn
            const uint32_t sets = geom.numSets();
            const uint32_t count =
                1 + static_cast<uint32_t>(rng.nextBelow(sets));
            const uint32_t first =
                static_cast<uint32_t>(rng.nextBelow(sets - count + 1));
            cache.setStreamSetWindow(stream, first, count);
            ref.setStreamSetWindow(stream, first, count);
            std::vector<Addr> dirty_a;
            std::vector<Addr> dirty_b;
            EXPECT_EQ(cache.evictStreamOutsideWindow(stream, &dirty_a),
                      ref.evictStreamOutsideWindow(stream, &dirty_b));
            EXPECT_EQ(dirty_a, dirty_b);
            break;
        }
        case 4: { // drop all windows
            cache.clearSetWindows();
            ref.clearSetWindows();
            break;
        }
        default: { // demand access (the hot path)
            const bool write = rng.nextBelow(4) == 0;
            const bool alloc = rng.nextBelow(8) != 0;
            const auto a = cache.access(addr, write, stream, cls, alloc);
            const auto b = ref.access(addr, write, stream, cls, alloc);
            EXPECT_EQ(a.hit, b.hit);
            EXPECT_EQ(a.sectorMiss, b.sectorMiss);
            EXPECT_EQ(a.hitLruPos, b.hitLruPos);
            EXPECT_EQ(a.evicted, b.evicted);
            EXPECT_EQ(a.evictedLine, b.evictedLine);
            EXPECT_EQ(a.evictedDirty, b.evictedDirty);
            EXPECT_EQ(a.evictedValidSectors, b.evictedValidSectors);
            break;
        }
        }
        if (op % 1024 == 0) {
            const auto ca = cache.composition();
            const auto cb = ref.composition();
            EXPECT_EQ(ca.validLines, cb.validLines);
            EXPECT_EQ(ca.strandedLines, cb.strandedLines);
            EXPECT_EQ(ca.byClass, cb.byClass);
        }
    }
    EXPECT_EQ(cache.accesses(), ref.accesses());
    EXPECT_EQ(cache.hits(), ref.hits());
    EXPECT_EQ(cache.sectorMisses(), ref.sectorMisses());
    EXPECT_EQ(cache.fills(), ref.fills());
}

TEST_P(CacheEquivalenceSweep, FillSequenceMatchesReference)
{
    // Dedicated fill-heavy sequence (the mixed test randomizes the write
    // flag awkwardly for fills; this one drives both models with
    // identical explicit arguments throughout).
    const CacheGeometry geom = GetParam();
    SetAssocCache cache(geom);
    RefCache ref(geom);
    Rng rng(0xfeed ^ geom.ways);

    const uint32_t grain =
        geom.sectorBytes != 0 ? geom.sectorBytes : geom.lineBytes;
    const uint64_t span = 2ull * geom.sizeBytes;
    for (int op = 0; op < 10000; ++op) {
        const Addr addr = rng.nextBelow(span / grain) * grain;
        const bool write = rng.nextBelow(3) == 0;
        const StreamId stream = static_cast<StreamId>(rng.nextBelow(2));
        if (rng.nextBelow(2) == 0) {
            const auto a =
                cache.access(addr, write, stream, DataClass::Compute);
            const auto b =
                ref.access(addr, write, stream, DataClass::Compute);
            EXPECT_EQ(a.hit, b.hit);
            EXPECT_EQ(a.evicted, b.evicted);
            EXPECT_EQ(a.evictedLine, b.evictedLine);
        } else {
            const auto a =
                cache.fill(addr, write, stream, DataClass::Compute);
            const auto b =
                ref.fill(addr, write, stream, DataClass::Compute);
            EXPECT_EQ(a.wasPresent, b.wasPresent);
            EXPECT_EQ(a.evicted, b.evicted);
            EXPECT_EQ(a.evictedLine, b.evictedLine);
            EXPECT_EQ(a.evictedDirty, b.evictedDirty);
            EXPECT_EQ(a.evictedValidSectors, b.evictedValidSectors);
        }
    }
    EXPECT_EQ(cache.hits(), ref.hits());
    EXPECT_EQ(cache.fills(), ref.fills());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEquivalenceSweep,
    ::testing::Values(
        // Pow2 sets, unsectored: the fast shift/mask path.
        CacheGeometry{64 * 1024, 8, kLineBytes, 0},
        // Sectored (Ampere-style 32 B sectors).
        CacheGeometry{32 * 1024, 4, kLineBytes, 32},
        // Non-pow2 set count (24 sets): the division fallback.
        CacheGeometry{24 * 4 * kLineBytes, 4, kLineBytes, 0},
        // Direct-mapped.
        CacheGeometry{16 * kLineBytes, 1, kLineBytes, 0}));

// ---------------------------------------------------------------------
// MSHR equivalence over random allocate/fill interleavings.
// ---------------------------------------------------------------------

class MshrEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(MshrEquivalenceSweep, RandomSequenceMatchesReference)
{
    const auto [entries, targets] = GetParam();
    Mshr mshr(entries, targets);
    RefMshr ref(entries, targets);
    Rng rng(0x5eed ^ entries ^ (targets << 8));

    // Few distinct lines relative to capacity so merges and stalls both
    // happen; strictly increasing clock so entries() order is total.
    const uint64_t distinct_lines = entries * 2;
    Cycle now = 0;
    std::vector<Addr> live;

    for (int op = 0; op < 30000; ++op) {
        const Addr line =
            (1 + rng.nextBelow(distinct_lines)) * kLineBytes;
        switch (rng.nextBelow(8)) {
        case 0: { // fill a pending line (if any)
            if (!live.empty()) {
                const Addr victim =
                    live[rng.nextBelow(live.size())];
                const std::vector<uint64_t> got = mshr.fill(victim);
                EXPECT_EQ(got, ref.fill(victim));
                live.erase(std::find(live.begin(), live.end(), victim));
            }
            break;
        }
        case 1: { // fill a line that is not pending
            const Addr absent =
                (distinct_lines + 1 + rng.nextBelow(16)) * kLineBytes;
            EXPECT_TRUE(mshr.fill(absent).empty());
            EXPECT_TRUE(ref.fill(absent).empty());
            break;
        }
        case 2: { // read-only probes
            EXPECT_EQ(mshr.pending(line), ref.pending(line));
            EXPECT_EQ(mshr.wouldStall(line), ref.wouldStall(line));
            EXPECT_EQ(mshr.keysFor(line), ref.keysFor(line));
            EXPECT_EQ(mshr.oldestAllocation(), ref.oldestAllocation());
            break;
        }
        default: { // allocate (vast majority: the hot path)
            ++now;
            const uint64_t key = rng.nextBelow(32) == 0
                ? Mshr::kVoidKey
                : rng.next();
            const auto a = mshr.allocate(line, key, now);
            const auto b = ref.allocate(line, key, now);
            EXPECT_EQ(a, b);
            if (a == Mshr::Outcome::NewEntry) {
                live.push_back(line);
            }
            break;
        }
        }
        EXPECT_EQ(mshr.entriesInUse(), ref.entriesInUse());
        EXPECT_EQ(mshr.responseTargets(), ref.responseTargets());
    }

    EXPECT_EQ(mshr.primaryAllocations(), ref.primaryAllocations());
    EXPECT_EQ(mshr.mergedAllocations(), ref.mergedAllocations());
    EXPECT_EQ(mshr.fillsServed(), ref.fillsServed());

    // Final structural comparison: same entries, same allocation order,
    // same merged-key order within each entry.
    const auto ea = mshr.entries();
    const auto eb = ref.entries();
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].line, eb[i].line);
        EXPECT_EQ(ea[i].allocatedAt, eb[i].allocatedAt);
        EXPECT_EQ(ea[i].targets, eb[i].targets);
        EXPECT_EQ(ea[i].keys, eb[i].keys);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MshrEquivalenceSweep,
    ::testing::Values(std::make_tuple(4u, 2u), std::make_tuple(32u, 8u),
                      std::make_tuple(64u, 16u),
                      std::make_tuple(256u, 4u)));

TEST(MshrEquivalence, TableWrapsAndReusesSlotsWithoutCollisionLoss)
{
    // Churn far more lines through a tiny MSHR than its table has slots;
    // open addressing must keep every lookup exact across the backward-
    // shift deletions.
    Mshr mshr(4, 2);
    RefMshr ref(4, 2);
    Cycle now = 0;
    for (uint64_t round = 0; round < 5000; ++round) {
        const Addr line = (round % 13 + 1) * kLineBytes * 64;
        ++now;
        EXPECT_EQ(mshr.allocate(line, round, now),
                  ref.allocate(line, round, now));
        if (round % 3 == 0) {
            const Addr victim = ((round / 3) % 13 + 1) * kLineBytes * 64;
            EXPECT_EQ(mshr.fill(victim), ref.fill(victim));
        }
        EXPECT_EQ(mshr.entriesInUse(), ref.entriesInUse());
        EXPECT_EQ(mshr.oldestAllocation(), ref.oldestAllocation());
    }
}

// ---------------------------------------------------------------------
// SM arena reuse: CTA slots and warp bookkeeping are pooled across
// kernel launches; re-running the same kernel on a warm GPU must behave
// identically (instruction counts are trace-determined and exact).
// ---------------------------------------------------------------------

GpuConfig
arenaGpu()
{
    GpuConfig cfg;
    cfg.name = "arena";
    cfg.numSms = 2;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 2;
    cfg.l2.bankGeometry = {64 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

ComputeKernelDesc
arenaDesc(const std::string &name)
{
    ComputeKernelDesc d;
    d.name = name;
    d.ctas = 24; // far more CTAs than concurrent slots: reuse within a run
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.fp32Ops = 8;
    d.intOps = 4;
    d.loads = {{MemPatternKind::Streaming, 0x100000, 1 << 18, 4, 2, 128}};
    d.store = {MemPatternKind::Streaming, 0x200000, 1 << 18, 4, 1, 128};
    d.hasStore = true;
    return d;
}

TEST(SmArenaReuse, RepeatedKernelsScaleExactlyAndConserveCounters)
{
    // Reference: one kernel alone.
    Gpu single(arenaGpu());
    const StreamId s1 = single.createStream("compute");
    single.enqueueKernel(s1, buildComputeKernel(arenaDesc("k")));
    ASSERT_TRUE(single.run(10'000'000).completed);
    const uint64_t one_instr = single.stats().stream(s1).instructions;
    const uint64_t one_ctas = single.stats().stream(s1).ctasLaunched;
    ASSERT_GT(one_instr, 0u);

    // Same kernel three times back to back: every launch after the first
    // reuses pooled CTA slots, warp-slot vectors, and tracker entries.
    Gpu repeat(arenaGpu());
    const StreamId s3 = repeat.createStream("compute");
    for (int i = 0; i < 3; ++i) {
        repeat.enqueueKernel(s3, buildComputeKernel(arenaDesc("k")));
    }
    const auto r3 = repeat.run(10'000'000);
    ASSERT_TRUE(r3.completed);

    // Instructions and CTA launches are trace-determined: arena reuse
    // must not lose or duplicate a single one.
    EXPECT_EQ(repeat.stats().stream(s3).instructions, 3 * one_instr);
    EXPECT_EQ(repeat.stats().stream(s3).ctasLaunched, 3 * one_ctas);
    EXPECT_EQ(repeat.stats().stream(s3).kernelsCompleted, 3u);

    // The conservation audit walks the pooled structures directly; a
    // stale slot or leaked tracker shows up as a flow violation.
    std::vector<integrity::InvariantViolation> violations;
    audit::auditAll(repeat.stats(), repeat.constSms(), repeat.l2(),
                    r3.cycles, violations);
    for (const auto &v : violations) {
        ADD_FAILURE() << v.check << ": " << v.detail;
    }

    // Determinism across a fresh identical GPU: the arena must not make
    // behaviour depend on pool history.
    Gpu repeat2(arenaGpu());
    const StreamId s3b = repeat2.createStream("compute");
    for (int i = 0; i < 3; ++i) {
        repeat2.enqueueKernel(s3b, buildComputeKernel(arenaDesc("k")));
    }
    const auto r3b = repeat2.run(10'000'000);
    ASSERT_TRUE(r3b.completed);
    EXPECT_EQ(repeat2.stats().stream(s3b).instructions,
              repeat.stats().stream(s3).instructions);
    EXPECT_EQ(r3b.cycles, r3.cycles);
}

} // namespace
} // namespace crisp
