#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpu/gpu.hpp"
#include "graphics/mesh.hpp"
#include "graphics/pipeline.hpp"
#include "integrity/report.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"
#include "traceio/cache.hpp"
#include "traceio/reader.hpp"
#include "traceio/replay.hpp"
#include "traceio/writer.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

using scenario::Scenario;
using scenario::ScenarioError;

std::string
scenarioPath(const char *name)
{
    return std::string(CRISP_SCENARIO_DIR) + "/" + name;
}

std::string
readAll(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
}

Scenario
loadTextOrDie(const std::string &text)
{
    Scenario sc;
    ScenarioError err;
    EXPECT_TRUE(scenario::loadScenarioText(text, "mem", sc, err))
        << err.str();
    return sc;
}

Scenario
loadFileOrDie(const char *name)
{
    Scenario sc;
    ScenarioError err;
    EXPECT_TRUE(scenario::loadScenarioFile(scenarioPath(name), sc, err))
        << err.str();
    return sc;
}

/** Single-threaded fast-forwarding engine: deterministic and quick. */
void
fastEngine(Gpu &gpu)
{
    engine::EngineConfig ec;
    ec.threads = 1;
    ec.fastForward = true;
    gpu.setEngine(ec);
}

void
expectStreamStatsIdentical(const StreamStats &a, const StreamStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.warpsLaunched, b.warpsLaunched);
    EXPECT_EQ(a.ctasLaunched, b.ctasLaunched);
    EXPECT_EQ(a.kernelsCompleted, b.kernelsCompleted);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1MshrMerges, b.l1MshrMerges);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2MshrMerges, b.l2MshrMerges);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.smemAccesses, b.smemAccesses);
    EXPECT_EQ(a.smemBankConflicts, b.smemBankConflicts);
    EXPECT_EQ(a.firstCycle, b.firstCycle);
    EXPECT_EQ(a.lastCycle, b.lastCycle);
}

// --- Loader ----------------------------------------------------------------

TEST(ScenarioLoader, MinimalComputeScenarioParses)
{
    const Scenario sc = loadTextOrDie(R"({
        "crisp_scenario": 1,
        "name": "mini",
        "compute": { "preset": "VIO", "frames": 2 }
    })");
    EXPECT_EQ(sc.name, "mini");
    EXPECT_FALSE(sc.graphics.present);
    ASSERT_TRUE(sc.compute.present);
    EXPECT_EQ(sc.compute.preset, "VIO");
    EXPECT_EQ(sc.compute.frames, 2u);
    EXPECT_EQ(sc.gpu.preset, "rtx3070");
    // Canonical text is a single line and stable across reformatting.
    EXPECT_EQ(sc.canonicalText.find('\n'), std::string::npos);
    const Scenario re = loadTextOrDie(
        "{\"crisp_scenario\":1,\"name\":\"mini\","
        "\"compute\":{\"preset\":\"VIO\",\"frames\":2}}");
    EXPECT_EQ(sc.canonicalText, re.canonicalText);
}

TEST(ScenarioLoader, UnknownKeyCarriesFileLineCol)
{
    const std::string text = "{\n"
                             "  \"crisp_scenario\": 1,\n"
                             "  \"name\": \"x\",\n"
                             "  \"wat\": 3\n"
                             "}\n";
    Scenario sc;
    ScenarioError err;
    ASSERT_FALSE(scenario::loadScenarioText(text, "mem.json", sc, err));
    EXPECT_EQ(err.file, "mem.json");
    EXPECT_EQ(err.line, 4u);
    EXPECT_GT(err.col, 0u);
    EXPECT_NE(err.message.find("unknown key \"wat\""), std::string::npos)
        << err.message;
    EXPECT_EQ(err.str().find("mem.json:4:"), 0u) << err.str();
}

TEST(ScenarioLoader, CommentsAreStrippedWithOffsetsPreserved)
{
    // The bad value sits on line 5 of the original text; the two comment
    // lines above it must not shift the reported coordinates.
    const std::string text = "// a header comment\n"
                             "{\n"
                             "  \"crisp_scenario\": 1, // trailing\n"
                             "  \"name\": \"x\",\n"
                             "  \"gpu\": { \"preset\": \"voodoo2\" }\n"
                             "}\n";
    Scenario sc;
    ScenarioError err;
    ASSERT_FALSE(scenario::loadScenarioText(text, "mem", sc, err));
    EXPECT_EQ(err.line, 5u);
}

TEST(ScenarioLoader, RejectsWithStructuredDiagnostics)
{
    struct Case
    {
        const char *text;
        const char *needle;
    };
    const Case cases[] = {
        {R"({"name":"x","compute":{"preset":"VIO"}})",
         "crisp_scenario"},
        {R"({"crisp_scenario":1,"compute":{"preset":"VIO"}})",
         "non-empty \"name\""},
        {R"({"crisp_scenario":1,"name":"x"})",
         "graphics"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"preset":"VIO",
             "kernels":[]}})",
         "\"preset\" excludes"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"k","threads_per_cta":100}]}})",
         "multiple of 32"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a"},{"name":"b","after":"a","at":5}]}})",
         "mutually"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a","delay":10}]}})",
         "\"delay\" needs an \"after\""},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a"}],"schedule":{"bursts":4}}})",
         "non-zero \"period\""},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a","loads":[{"buffer":"frame_color"}]}]}})",
         "frame_color needs a"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a","store":{"buffer":"ghost"}}]}})",
         "store references unknown buffer"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a"},{"name":"b","after":"c"}]}})",
         "not an earlier"},
        {R"({"crisp_scenario":1,"name":"x","compute":{"kernels":[
             {"name":"a","at":100},{"name":"b","at":50}]}})",
         "non-decreasing"},
        {R"({"crisp_scenario":1,"name":"x","graphics":{"meshes":[
             {"name":"m","type":"plane"},{"name":"m","type":"box"}],
             "materials":[{"name":"mt"}],
             "draws":[{"name":"d","mesh":"m","material":"mt"}]}})",
         "duplicate mesh"},
        {R"({"crisp_scenario":1,"name":"x","graphics":{"meshes":[
             {"name":"m","type":"plane"}],
             "materials":[{"name":"mt"}],
             "draws":[{"name":"d","mesh":"nope","material":"mt"}]}})",
         "unknown mesh"},
        {R"({"crisp_scenario":1,"name":"x","gpu":{"preset":"voodoo2"},
             "compute":{"preset":"VIO"}})",
         "must be one of"},
        {R"({"crisp_scenario":1,"name":"x",
             "compute":{"preset":"VIO","frames":900}})",
         "frames"},
    };
    for (const Case &c : cases) {
        Scenario sc;
        ScenarioError err;
        ASSERT_FALSE(scenario::loadScenarioText(c.text, "mem", sc, err))
            << "accepted: " << c.text;
        EXPECT_NE(err.message.find(c.needle), std::string::npos)
            << "for " << c.text << "\n  got: " << err.message;
        EXPECT_GT(err.line, 0u) << c.text;
        EXPECT_GT(err.col, 0u) << c.text;
    }
}

TEST(ScenarioLoader, MissingFileIsAnError)
{
    Scenario sc;
    ScenarioError err;
    ASSERT_FALSE(
        scenario::loadScenarioFile(scenarioPath("nope.json"), sc, err));
    EXPECT_FALSE(err.message.empty());
    EXPECT_NE(err.file.find("nope.json"), std::string::npos);
}

TEST(ScenarioLoader, EveryCheckedInScenarioLoads)
{
    uint32_t count = 0;
    for (const auto &e :
         std::filesystem::directory_iterator(CRISP_SCENARIO_DIR)) {
        if (e.path().extension() != ".json") {
            continue;
        }
        Scenario sc;
        ScenarioError err;
        EXPECT_TRUE(scenario::loadScenarioFile(e.path().string(), sc, err))
            << err.str();
        EXPECT_FALSE(sc.name.empty()) << e.path();
        ++count;
    }
    // The suite ships the preset-coverage files plus the three stress
    // scenarios; a shrinking directory means files were lost, not renamed.
    EXPECT_GE(count, 7u);
}

// --- Parity against the hand-built path ------------------------------------

TEST(ScenarioParity, SponzaVioMatchesHandBuiltPathExactly)
{
    const Scenario sc = loadFileOrDie("sponza_vio.json");

    // Scenario path.
    Gpu a(scenario::gpuConfigFor(sc));
    fastEngine(a);
    AddressSpace heap_a;
    scenario::Materialized mat;
    const scenario::SubmitResult sr =
        scenario::submitScenario(sc, a, heap_a, mat);
    ASSERT_NE(sr.gfx, kInvalidStream);
    ASSERT_NE(sr.cmp, kInvalidStream);
    a.setPartition(PartitionConfig{});
    const auto run_a = a.run(8'000'000'000ull);
    ASSERT_TRUE(run_a.completed);

    // Hand-built path, exactly as crisp_sim assembles it:
    //   --scene SPL --compute VIO --width 640 --height 360 --frames 2
    Gpu b(GpuConfig::rtx3070());
    fastEngine(b);
    AddressSpace heap_b;
    Scene scene = buildSceneByName("SPL", heap_b);
    PipelineConfig pc;
    pc.width = 640;
    pc.height = 360;
    pc.lodEnabled = true;
    RenderPipeline pipeline(pc, heap_b);
    const StreamId gfx = b.createStream("graphics");
    const StreamId cmp = b.createStream("compute");
    std::vector<RenderSubmission> frames;
    for (uint32_t f = 0; f < 2; ++f) {
        frames.push_back(pipeline.submit(scene));
        submitFrame(b, gfx, frames.back());
    }
    for (const KernelInfo &k : buildVio(heap_b, 2)) {
        b.enqueueKernel(cmp, k);
    }
    b.setPartition(PartitionConfig{});
    const auto run_b = b.run(8'000'000'000ull);
    ASSERT_TRUE(run_b.completed);

    // Same heap layout, same frames, byte-identical per-stream stats.
    EXPECT_EQ(heap_a.allocatedEnd(), heap_b.allocatedEnd());
    ASSERT_EQ(mat.frames.size(), frames.size());
    for (size_t f = 0; f < frames.size(); ++f) {
        EXPECT_EQ(mat.frames[f].kernels.size(), frames[f].kernels.size());
    }
    EXPECT_EQ(run_a.cycles, run_b.cycles);
    expectStreamStatsIdentical(a.stats().stream(sr.gfx),
                               b.stats().stream(gfx));
    expectStreamStatsIdentical(a.stats().stream(sr.cmp),
                               b.stats().stream(cmp));
}

// --- Behaviour of the new stress scenarios ---------------------------------

TEST(MeshDeform, DisplacesVerticesAlongNormals)
{
    AddressSpace heap;
    const Mesh flat = Mesh::makePlane("p", 4, 2.0f, 1.0f, heap);
    const Mesh still =
        Mesh::deformed("p.0", flat, 0.7f, /*amplitude=*/0.0f, 3.0f, heap);
    const Mesh waved =
        Mesh::deformed("p.1", flat, 0.7f, /*amplitude=*/0.5f, 3.0f, heap);

    ASSERT_EQ(still.vertices().size(), flat.vertices().size());
    ASSERT_EQ(waved.vertices().size(), flat.vertices().size());
    // Fresh buffers even when the pose is unchanged: the re-upload cost
    // is paid every frame.
    EXPECT_NE(waved.vbAddr(), flat.vbAddr());
    EXPECT_NE(still.vbAddr(), waved.vbAddr());

    bool any_moved = false;
    for (size_t i = 0; i < flat.vertices().size(); ++i) {
        const Vec3 &o = flat.vertices()[i].position;
        const Vec3 &s = still.vertices()[i].position;
        EXPECT_EQ(o.x, s.x);
        EXPECT_EQ(o.y, s.y);
        EXPECT_EQ(o.z, s.z);
        const Vec3 &w = waved.vertices()[i].position;
        any_moved = any_moved || o.x != w.x || o.y != w.y || o.z != w.z;
    }
    EXPECT_TRUE(any_moved);
}

TEST(ScenarioStress, DeformingFlagRebuildsTheMeshEveryFrame)
{
    const Scenario sc = loadFileOrDie("deforming_flag.json");
    ASSERT_TRUE(sc.graphics.deform.enabled);
    EXPECT_EQ(sc.graphics.deform.mesh, "flag");

    Gpu gpu(scenario::gpuConfigFor(sc));
    fastEngine(gpu);
    AddressSpace heap;
    scenario::Materialized mat;
    const scenario::SubmitResult sr =
        scenario::submitScenario(sc, gpu, heap, mat);
    ASSERT_NE(sr.gfx, kInvalidStream);
    EXPECT_EQ(sr.cmp, kInvalidStream);
    ASSERT_EQ(mat.frames.size(), 4u);

    const auto run = gpu.run(8'000'000'000ull);
    ASSERT_TRUE(run.completed);
    uint64_t expected = 0;
    for (const RenderSubmission &f : mat.frames) {
        expected += f.kernels.size();
    }
    const StreamStats &gs = gpu.stats().stream(sr.gfx);
    EXPECT_EQ(gs.kernelsCompleted, expected);
    EXPECT_GT(gs.instructions, 0u);
}

TEST(ScenarioStress, DivergenceBudgetIncreasesExecutedWork)
{
    const char *base = R"({
        "crisp_scenario": 1, "name": "div-%s",
        "compute": {
            "buffers": [ { "name": "buf", "bytes": 262144 } ],
            "kernels": [ {
                "name": "walk", "ctas": 8, "threads_per_cta": 64,
                "regs_per_thread": 24, "iterations": 4,
                "fp32_ops": 4, "int_ops": 2,
                %s
                "loads": [ { "buffer": "buf", "pattern": "gather",
                             "access_bytes": 8, "count": 2 } ]
            } ]
        }
    })";
    char coherent[1024];
    char divergent[1024];
    std::snprintf(coherent, sizeof coherent, base, "coherent", "");
    std::snprintf(divergent, sizeof divergent, base, "divergent",
                  "\"divergence\": { \"extra_iterations\": 16, "
                  "\"seed\": 7 },");

    uint64_t instrs[2] = {0, 0};
    const char *texts[2] = {coherent, divergent};
    for (int i = 0; i < 2; ++i) {
        const Scenario sc = loadTextOrDie(texts[i]);
        Gpu gpu(scenario::gpuConfigFor(sc));
        fastEngine(gpu);
        AddressSpace heap;
        scenario::Materialized mat;
        const scenario::SubmitResult sr =
            scenario::submitScenario(sc, gpu, heap, mat);
        ASSERT_TRUE(gpu.run(8'000'000'000ull).completed);
        instrs[i] = gpu.stats().stream(sr.cmp).instructions;
    }
    EXPECT_GT(instrs[1], instrs[0]);
}

TEST(ScenarioStress, BurstScheduleGatesKernelArrival)
{
    const Scenario sc = loadTextOrDie(R"({
        "crisp_scenario": 1, "name": "bursts",
        "compute": {
            "buffers": [ { "name": "buf", "bytes": 65536 } ],
            "kernels": [ {
                "name": "tick", "ctas": 4, "threads_per_cta": 64,
                "regs_per_thread": 16, "iterations": 2, "fp32_ops": 4,
                "at": 1000,
                "loads": [ { "buffer": "buf", "access_bytes": 4,
                             "count": 1 } ]
            } ],
            "schedule": { "bursts": 3, "period": 200000 }
        }
    })");

    Gpu gpu(scenario::gpuConfigFor(sc));
    fastEngine(gpu);
    AddressSpace heap;
    scenario::Materialized mat;
    scenario::submitScenario(sc, gpu, heap, mat);
    ASSERT_TRUE(gpu.run(8'000'000'000ull).completed);

    // One launch per burst, none before its arrival cycle. The stream is
    // FIFO so the log's launch cycles are already in burst order.
    const auto &log = gpu.kernelLog();
    ASSERT_EQ(log.size(), 3u);
    for (size_t b = 0; b < log.size(); ++b) {
        EXPECT_GE(log[b].launchCycle, b * 200000ull + 1000ull)
            << "burst " << b;
    }
}

// The divergent-gather scenario saturates DRAM hard enough that a
// single L1 miss can wait north of 60k cycles — far past the derived
// mshrLeakAge — while still being live in a queue. Under the daemon's
// watchdog options (crispd runs every scenario job with checkInterval
// set) the run must complete, not be declared hung by the leak scan:
// regression for the false positive where age alone branded starved
// entries as leaks. The cycle count must also match an unwatched run
// bit for bit (the watchdog observes, never perturbs).
TEST(ScenarioStress, DramSaturationSurvivesTheWatchdog)
{
    const Scenario sc = loadFileOrDie("ray_traversal.json");

    Gpu watched(scenario::gpuConfigFor(sc));
    fastEngine(watched);
    AddressSpace heap;
    scenario::Materialized mat;
    const scenario::SubmitResult sr =
        scenario::submitScenario(sc, watched, heap, mat);

    integrity::RunOptions opts;
    opts.checkInterval = 1024;   // crispd's default watchdog cadence
    opts.onHang = integrity::RunOptions::OnHang::Report;
    const auto wr = watched.run(8'000'000'000ull, opts);
    ASSERT_TRUE(wr.completed)
        << (wr.hang ? wr.hang->render() : "no hang report");

    Gpu plain(scenario::gpuConfigFor(sc));
    fastEngine(plain);
    AddressSpace heap2;
    scenario::Materialized mat2;
    scenario::submitScenario(sc, plain, heap2, mat2);
    const auto pr = plain.run(8'000'000'000ull);
    ASSERT_TRUE(pr.completed);
    EXPECT_EQ(wr.cycles, pr.cycles);
    expectStreamStatsIdentical(watched.stats().stream(sr.cmp),
                               plain.stats().stream(sr.cmp));
}

// --- Flattening: packed traces and the split cache -------------------------

TEST(ScenarioFlatten, ArrivalSchedulesDoNotFlatten)
{
    std::string why;
    const Scenario bursts = loadFileOrDie("game_inference.json");
    EXPECT_FALSE(scenario::flattenable(bursts, why));
    EXPECT_NE(why.find("burst"), std::string::npos) << why;

    const Scenario rays = loadFileOrDie("ray_traversal.json");
    why.clear();
    EXPECT_TRUE(scenario::flattenable(rays, why)) << why;
    EXPECT_FALSE(scenario::computeReadsFrame(rays));

    // ATW samples the rendered frame: flattenable as one trace, but the
    // two sides can never be cached independently.
    const Scenario atw = loadFileOrDie("pistol_atw.json");
    EXPECT_TRUE(scenario::computeReadsFrame(atw));

    AddressSpace heap;
    scenario::Materialized mat;
    scenario::Flattened flat;
    EXPECT_FALSE(scenario::flattenScenario(bursts, heap, mat, flat, why));
    EXPECT_FALSE(why.empty());
}

TEST(ScenarioFlatten, PackedTraceReplaysByteIdenticalToLive)
{
    const Scenario sc = loadFileOrDie("ray_traversal.json");

    // Live path.
    Gpu live(scenario::gpuConfigFor(sc));
    fastEngine(live);
    AddressSpace heap_live;
    scenario::Materialized mat_live;
    const scenario::SubmitResult sr =
        scenario::submitScenario(sc, live, heap_live, mat_live);
    const auto run_live = live.run(8'000'000'000ull);
    ASSERT_TRUE(run_live.completed);

    // Flatten, pack to disk, reload, replay — trace_pack's pipeline.
    AddressSpace heap_flat;
    const Addr base = heap_flat.allocatedEnd();
    scenario::Materialized mat_flat;
    scenario::Flattened flat;
    std::string why;
    ASSERT_TRUE(
        scenario::flattenScenario(sc, heap_flat, mat_flat, flat, why))
        << why;
    EXPECT_TRUE(flat.gfxKernels.empty());
    ASSERT_EQ(flat.cmpKernels.size(), 3u);

    const std::string path =
        std::string(::testing::TempDir()) + "/scenario_rt.crtr";
    traceio::TraceError terr;
    ASSERT_TRUE(traceio::writeTrace(
        path, "trace_pack/scenario/" + sc.canonicalText, flat.cmpKernels,
        flat.cmpDependsOn, heap_flat.allocatedEnd() - base, terr))
        << terr.render();
    traceio::LoadedTrace loaded;
    ASSERT_TRUE(traceio::loadTrace(path, loaded, terr)) << terr.render();
    ASSERT_EQ(loaded.dependsOn, flat.cmpDependsOn);

    Gpu replay(scenario::gpuConfigFor(sc));
    fastEngine(replay);
    const StreamId rs = replay.createStream("compute");
    traceio::submitLoaded(replay, rs, loaded);
    const auto run_replay = replay.run(8'000'000'000ull);
    ASSERT_TRUE(run_replay.completed);

    EXPECT_EQ(run_live.cycles, run_replay.cycles);
    expectStreamStatsIdentical(live.stats().stream(sr.cmp),
                               replay.stats().stream(rs));
}

TEST(ScenarioFlatten, SplitCacheHitReproducesTheMissBuild)
{
    const Scenario sc = loadFileOrDie("ray_traversal.json");
    const std::string dir =
        std::string(::testing::TempDir()) + "/scenario-cache";
    std::filesystem::remove_all(dir);
    traceio::TraceCache cache(dir);
    ASSERT_TRUE(cache.enabled());

    const auto builder = [&sc](AddressSpace &h) {
        traceio::TraceCache::CachedSubmission out;
        scenario::flattenComputeSide(sc, h, nullptr, out.kernels,
                                     out.dependsOn);
        return out;
    };
    const std::string key =
        "crisp-scenario/r1/heap=0/" + sc.canonicalText + "#cmp";

    AddressSpace heap_miss;
    bool hit = true;
    const auto built =
        cache.loadOrBuildSubmission(key, heap_miss, builder, &hit);
    EXPECT_FALSE(hit);
    AddressSpace heap_hit;
    const auto replayed =
        cache.loadOrBuildSubmission(key, heap_hit, builder, &hit);
    EXPECT_TRUE(hit);

    // Same dependency graph, same heap footprint, identical replay.
    EXPECT_EQ(built.dependsOn, replayed.dependsOn);
    ASSERT_EQ(built.kernels.size(), replayed.kernels.size());
    EXPECT_EQ(heap_miss.allocatedEnd(), heap_hit.allocatedEnd());

    uint64_t cycles[2] = {0, 0};
    const traceio::TraceCache::CachedSubmission *subs[2] = {&built,
                                                            &replayed};
    StreamStats stats[2];
    for (int i = 0; i < 2; ++i) {
        Gpu gpu(scenario::gpuConfigFor(sc));
        fastEngine(gpu);
        const StreamId s = gpu.createStream("compute");
        std::vector<KernelId> ids;
        for (size_t k = 0; k < subs[i]->kernels.size(); ++k) {
            KernelInfo info = subs[i]->kernels[k];
            const int dep = subs[i]->dependsOn[k];
            ids.push_back(gpu.enqueueKernelAfter(
                s, std::move(info),
                dep < 0 ? Gpu::kNoDependency
                        : ids[static_cast<size_t>(dep)]));
        }
        const auto run = gpu.run(8'000'000'000ull);
        ASSERT_TRUE(run.completed);
        cycles[i] = run.cycles;
        stats[i] = gpu.stats().stream(s);
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    expectStreamStatsIdentical(stats[0], stats[1]);
}

// --- Schema fuzzing --------------------------------------------------------
//
// These run under the sanitize CI job: a scenario file is attacker-shaped
// input (crisp_submit sends it over a socket), so the loader must reject
// arbitrary corruption with a structured error — never UB, never fatal().

TEST(ScenarioFuzz, TruncationAtEveryByteOffset)
{
    const std::string text = readAll(scenarioPath("game_inference.json"));
    ASSERT_GT(text.size(), 100u);
    for (size_t len = 0; len < text.size(); ++len) {
        Scenario sc;
        ScenarioError err;
        if (!scenario::loadScenarioText(text.substr(0, len), "mem", sc,
                                        err)) {
            EXPECT_FALSE(err.message.empty()) << "at length " << len;
        }
    }
}

TEST(ScenarioFuzz, RandomByteFlipsNeverCrashTheLoader)
{
    const std::string pristine =
        readAll(scenarioPath("deforming_flag.json"));
    ASSERT_GT(pristine.size(), 100u);
    Rng rng(0xC0FFEEull);
    for (int i = 0; i < 400; ++i) {
        std::string text = pristine;
        const size_t pos = rng.nextBelow(text.size());
        text[pos] = static_cast<char>(
            static_cast<uint8_t>(text[pos]) ^
            static_cast<uint8_t>(1 + rng.nextBelow(255)));
        Scenario sc;
        ScenarioError err;
        if (!scenario::loadScenarioText(text, "mem", sc, err)) {
            EXPECT_FALSE(err.message.empty()) << "flip at " << pos;
        }
    }
}

} // namespace
} // namespace crisp
