#include <gtest/gtest.h>

#include "partition/tap.hpp"
#include "partition/warped_slicer.hpp"
#include "workloads/compute.hpp"

namespace crisp
{
namespace
{

GpuConfig
tinyGpu(uint32_t sms = 4)
{
    GpuConfig cfg;
    cfg.name = "tiny";
    cfg.numSms = sms;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 128.0;
    cfg.l2.numBanks = 2;
    cfg.l2.bankGeometry = {64 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

ComputeKernelDesc
memoryHeavyDesc(const std::string &name, uint32_t ctas, Addr base)
{
    ComputeKernelDesc d;
    d.name = name;
    d.ctas = ctas;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.fp32Ops = 8;
    d.loads = {{MemPatternKind::Streaming, base, 1 << 22, 4, 4, 128}};
    d.store = {MemPatternKind::Streaming, base + (1 << 22), 1 << 20, 4, 1,
               128};
    d.hasStore = true;
    return d;
}

ComputeKernelDesc
computeBoundDesc(const std::string &name, uint32_t ctas)
{
    ComputeKernelDesc d;
    d.name = name;
    d.ctas = ctas;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.iterations = 4;
    d.fp32Ops = 64;
    d.sfuOps = 8;
    d.loads = {{MemPatternKind::Broadcast, 0x9000000, 4096, 16, 1, 1}};
    return d;
}

TEST(WarpedSlicerTest, SamplesAndDecides)
{
    Gpu gpu(tinyGpu(4));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("cmp");
    gpu.enqueueKernel(a, buildComputeKernel(
        memoryHeavyDesc("a", 64, 0x1000000)));
    gpu.enqueueKernel(b, buildComputeKernel(computeBoundDesc("b", 64)));
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    gpu.setPartition(part);

    WarpedSlicerConfig cfg;
    cfg.streamA = a;
    cfg.streamB = b;
    cfg.sampleCycles = 500;
    WarpedSlicer slicer(cfg);
    gpu.addController(&slicer);

    ASSERT_TRUE(gpu.run(10'000'000).completed);
    EXPECT_GE(slicer.samplingPhases(), 1u);
    ASSERT_FALSE(slicer.decisions().empty());
    for (const auto &[cycle, share] : slicer.decisions()) {
        EXPECT_GT(share, 0.0);
        EXPECT_LT(share, 1.0);
    }
}

TEST(WarpedSlicerTest, ResetsAtEachKernelLaunch)
{
    Gpu gpu(tinyGpu(4));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("cmp");
    // Three kernels on stream a: each launch restarts sampling.
    for (int i = 0; i < 3; ++i) {
        gpu.enqueueKernel(a, buildComputeKernel(
            memoryHeavyDesc("a" + std::to_string(i), 16, 0x1000000)));
    }
    gpu.enqueueKernel(b, buildComputeKernel(computeBoundDesc("b", 48)));
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    gpu.setPartition(part);

    WarpedSlicerConfig cfg;
    cfg.streamA = a;
    cfg.streamB = b;
    cfg.sampleCycles = 300;
    WarpedSlicer slicer(cfg);
    gpu.addController(&slicer);
    ASSERT_TRUE(gpu.run(10'000'000).completed);
    EXPECT_GE(slicer.samplingPhases(), 4u);  // 3 launches on a + 1 on b
}

TEST(WarpedSlicerTest, ConfigSharesSpanRange)
{
    WarpedSlicerConfig cfg;
    cfg.sampleCycles = 100;
    cfg.numConfigs = 4;
    WarpedSlicer slicer(cfg);
    // Default share before any decision is the even split.
    EXPECT_DOUBLE_EQ(slicer.currentShareA(), 0.5);
}

TEST(TapTest, RepartitionsAtEpochs)
{
    Gpu gpu(tinyGpu(2));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("cmp");
    gpu.enqueueKernel(a, buildComputeKernel(
        memoryHeavyDesc("a", 64, 0x1000000)));
    gpu.enqueueKernel(b, buildComputeKernel(
        memoryHeavyDesc("b", 64, 0x4000000)));
    PartitionConfig part;
    part.policy = PartitionPolicy::Mps;
    gpu.setPartition(part);

    TapConfig cfg;
    cfg.gfxStream = a;
    cfg.computeStream = b;
    cfg.epoch = 2000;
    TapController tap(cfg, gpu);
    gpu.addController(&tap);

    ASSERT_TRUE(gpu.run(20'000'000).completed);
    EXPECT_FALSE(tap.decisions().empty());
    const uint32_t sets = gpu.l2().config().bankGeometry.numSets();
    EXPECT_EQ(tap.gfxSets() + tap.computeSets(), sets);
    EXPECT_GE(tap.gfxSets(), 1u);
    EXPECT_GE(tap.computeSets(), 1u);
}

TEST(TapTest, ComputeBoundStreamGetsMinimumSets)
{
    Gpu gpu(tinyGpu(2));
    const StreamId a = gpu.createStream("gfx");
    const StreamId b = gpu.createStream("cmp");
    gpu.enqueueKernel(a, buildComputeKernel(
        memoryHeavyDesc("a", 96, 0x1000000)));
    // HOLO-like: virtually no memory traffic.
    gpu.enqueueKernel(b, buildComputeKernel(computeBoundDesc("b", 96)));
    PartitionConfig part;
    part.policy = PartitionPolicy::Mps;
    gpu.setPartition(part);

    TapConfig cfg;
    cfg.gfxStream = a;
    cfg.computeStream = b;
    cfg.epoch = 1500;
    TapController tap(cfg, gpu);
    gpu.addController(&tap);
    ASSERT_TRUE(gpu.run(20'000'000).completed);

    // While both streams were live, TAP assigned nearly everything to the
    // memory-heavy stream (the paper: "TAP ... assign[s] only 1 set to
    // HOLO kernels"). After one stream drains the monitors decay back, so
    // examine the decisions taken during co-execution.
    const uint32_t sets = gpu.l2().config().bankGeometry.numSets();
    const Cycle gfx_end = gpu.streamFinishCycle(a);
    bool saw_skewed = false;
    for (const auto &[cycle, gfx_sets] : tap.decisions()) {
        if (cycle <= gfx_end) {
            saw_skewed |= gfx_sets >= sets - sets / 8;
        }
    }
    EXPECT_TRUE(saw_skewed);
}

TEST(TapTest, SetWindowsActuallyConfineStreams)
{
    // Unit-level: drive the L2 directly with TAP-style windows.
    L2Config cfg;
    cfg.numBanks = 1;
    cfg.bankGeometry = {16 * kLineBytes, 2, kLineBytes};  // 8 sets x 2
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    l2.setResponseHandler([](const MemRequest &) {});
    l2.setStreamSetWindow(1, 0, 7);
    l2.setStreamSetWindow(2, 7, 1);

    Cycle now = 0;
    auto touch = [&](StreamId s, Addr line) {
        MemRequest req;
        req.line = line;
        req.stream = s;
        req.completionKey = line;
        while (!l2.submit(req, now)) {
            ++now;
            l2.step(now);
        }
        for (int i = 0; i < 600; ++i) {
            ++now;
            l2.step(now);
        }
    };
    for (int i = 0; i < 32; ++i) {
        touch(2, static_cast<Addr>(i) * kLineBytes);
    }
    // Stream 2 is confined to one set: at most 2 resident lines.
    EXPECT_LE(l2.composition().validLines, 2u);
}

TEST(TapTest, ShrinkStrandsLinesAndEvictionWritesBackDirty)
{
    // Pins the stranded-line semantics: lines installed under a wide set
    // window stay resident after the window shrinks (new fills simply
    // can't reach them), composition() reports them as stranded, and
    // evictStrandedLines() flushes them with exactly one DRAM writeback
    // per dirty line.
    L2Config cfg;
    cfg.numBanks = 1;
    cfg.bankGeometry = {16 * kLineBytes, 2, kLineBytes}; // 8 sets x 2
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    l2.setResponseHandler([](const MemRequest &) {});
    l2.setStreamSetWindow(2, 0, 8);

    Cycle now = 0;
    auto touch = [&](StreamId s, Addr line, bool write) {
        MemRequest req;
        req.line = line;
        req.stream = s;
        req.write = write;
        req.completionKey = line;
        while (!l2.submit(req, now)) {
            ++now;
            l2.step(now);
        }
        for (int i = 0; i < 600; ++i) {
            ++now;
            l2.step(now);
        }
    };
    // Four lines landing in sets 0..3; the one in set 1 is dirty.
    for (int i = 0; i < 4; ++i) {
        touch(2, static_cast<Addr>(i) * kLineBytes, i == 1);
    }
    ASSERT_EQ(l2.composition().validLines, 4u);
    EXPECT_EQ(l2.composition().strandedLines, 0u);

    // Shrink the stream to the last set: all four lines are now outside
    // the window. They are still valid (stranded counts overlap
    // validLines, it does not subtract from it).
    l2.setStreamSetWindow(2, 7, 1);
    EXPECT_EQ(l2.composition().strandedLines, 4u);
    EXPECT_EQ(l2.composition().validLines, 4u);

    const uint64_t before_writes = stats.stream(2).dramWrites;
    EXPECT_EQ(l2.evictStrandedLines(2, now), 4u);
    EXPECT_EQ(l2.composition().strandedLines, 0u);
    EXPECT_EQ(l2.composition().validLines, 0u);
    EXPECT_EQ(stats.stream(2).dramWrites, before_writes + 1);

    // Idempotent: nothing left to evict.
    EXPECT_EQ(l2.evictStrandedLines(2, now), 0u);
}

} // namespace
} // namespace crisp
