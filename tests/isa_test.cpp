#include <gtest/gtest.h>

#include "isa/opcode.hpp"
#include "isa/trace.hpp"
#include "isa/trace_builder.hpp"

namespace crisp
{
namespace
{

TEST(Opcode, Classes)
{
    EXPECT_EQ(opcodeClass(Opcode::FFMA), OpClass::FP32);
    EXPECT_EQ(opcodeClass(Opcode::IMAD), OpClass::INT);
    EXPECT_EQ(opcodeClass(Opcode::MUFU_SIN), OpClass::SFU);
    EXPECT_EQ(opcodeClass(Opcode::HMMA), OpClass::Tensor);
    EXPECT_EQ(opcodeClass(Opcode::LDG), OpClass::MemGlobal);
    EXPECT_EQ(opcodeClass(Opcode::STS), OpClass::MemShared);
    EXPECT_EQ(opcodeClass(Opcode::TEX), OpClass::MemTexture);
    EXPECT_EQ(opcodeClass(Opcode::LDC), OpClass::MemConst);
    EXPECT_EQ(opcodeClass(Opcode::BAR), OpClass::Barrier);
    EXPECT_EQ(opcodeClass(Opcode::EXIT), OpClass::Control);
}

TEST(Opcode, MemoryPredicates)
{
    EXPECT_TRUE(isMemory(Opcode::LDG));
    EXPECT_TRUE(isMemory(Opcode::TEX));
    EXPECT_FALSE(isMemory(Opcode::FFMA));
    EXPECT_TRUE(isStore(Opcode::STG));
    EXPECT_TRUE(isStore(Opcode::STS));
    EXPECT_FALSE(isStore(Opcode::LDG));
}

TEST(Opcode, NamesAreStable)
{
    EXPECT_STREQ(opcodeName(Opcode::FFMA), "FFMA");
    EXPECT_STREQ(opcodeName(Opcode::TEX), "TEX");
}

TEST(Coalesce, AllLanesSameLineMergeToOne)
{
    TraceInstr in;
    in.opcode = Opcode::LDG;
    in.accessBytes = 4;
    in.addrs.assign(32, 0x1000);
    const auto lines = coalesceToLines(in);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], 0x1000u & ~(kLineBytes - 1));
}

TEST(Coalesce, UnitStrideFourBytesIsOneLinePerThirtyTwoLanes)
{
    TraceInstr in;
    in.opcode = Opcode::LDG;
    in.accessBytes = 4;
    for (uint32_t l = 0; l < 32; ++l) {
        in.addrs.push_back(0x2000 + 4ull * l);
    }
    EXPECT_EQ(coalesceToLines(in).size(), 1u);
    EXPECT_EQ(coalesceToSectors(in).size(), 4u);
}

TEST(Coalesce, StridedAccessesSpreadLines)
{
    TraceInstr in;
    in.opcode = Opcode::LDG;
    in.accessBytes = 4;
    for (uint32_t l = 0; l < 32; ++l) {
        in.addrs.push_back(0x4000 + static_cast<Addr>(l) * kLineBytes);
    }
    EXPECT_EQ(coalesceToLines(in).size(), 32u);
}

TEST(Coalesce, AccessStraddlingLineTouchesBoth)
{
    TraceInstr in;
    in.opcode = Opcode::LDG;
    in.accessBytes = 16;
    in.addrs.push_back(kLineBytes - 8);  // 8 bytes in line 0, 8 in line 1
    const auto lines = coalesceToLines(in);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], 0u);
    EXPECT_EQ(lines[1], static_cast<Addr>(kLineBytes));
}

TEST(Coalesce, ResultsSortedAndUnique)
{
    TraceInstr in;
    in.opcode = Opcode::LDG;
    in.accessBytes = 4;
    in.addrs = {0x5000, 0x1000, 0x5000, 0x3000};
    const auto lines = coalesceToLines(in);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_LT(lines[0], lines[1]);
    EXPECT_LT(lines[1], lines[2]);
}

TEST(TraceBuilderTest, AluAndMasks)
{
    TraceBuilder tb(32);
    tb.alu(Opcode::FFMA, 4, 1, 2);
    tb.mask(0x0000ffff).alu(Opcode::IADD, 5, 4);
    WarpTrace w = tb.take();
    ASSERT_EQ(w.instrs.size(), 2u);
    EXPECT_EQ(w.instrs[0].activeMask, 0xffffffffu);
    EXPECT_EQ(w.instrs[1].activeMask, 0x0000ffffu);
    EXPECT_EQ(w.instrs[0].dst, 4);
    EXPECT_EQ(w.instrs[0].srcs[0], 1);
}

TEST(TraceBuilderTest, PartialWarpMask)
{
    TraceBuilder tb(5);
    tb.alu(Opcode::MOV, 1);
    WarpTrace w = tb.take();
    EXPECT_EQ(w.threadCount, 5u);
    EXPECT_EQ(w.instrs[0].activeMask, 0x1fu);
    EXPECT_EQ(w.instrs[0].activeLanes(), 5u);
}

TEST(TraceBuilderTest, MemStridedGeneratesPerLaneAddresses)
{
    TraceBuilder tb(8);
    tb.memStrided(Opcode::LDG, 2, 0x100, 8, 4, DataClass::Compute);
    WarpTrace w = tb.take();
    ASSERT_EQ(w.instrs.size(), 1u);
    ASSERT_EQ(w.instrs[0].addrs.size(), 8u);
    EXPECT_EQ(w.instrs[0].addrs[0], 0x100u);
    EXPECT_EQ(w.instrs[0].addrs[7], 0x100u + 7 * 8);
    EXPECT_EQ(w.instrs[0].dataClass, DataClass::Compute);
}

TEST(TraceBuilderTest, StoreHasNoDest)
{
    TraceBuilder tb(4);
    tb.memUniform(Opcode::STG, 3, 0x40, 4, DataClass::Pipeline);
    WarpTrace w = tb.take();
    EXPECT_FALSE(w.instrs[0].hasDst());
    // Stored register appears as a source.
    EXPECT_EQ(w.instrs[0].srcs[1], 3);
}

TEST(TraceBuilderTest, ChainCreatesSerialDependence)
{
    TraceBuilder tb(32);
    tb.aluChain(Opcode::FFMA, 6, 2, 3);
    WarpTrace w = tb.take();
    ASSERT_EQ(w.instrs.size(), 3u);
    for (const auto &in : w.instrs) {
        EXPECT_EQ(in.dst, 6);
        EXPECT_EQ(in.srcs[0], 6);  // reads its own previous result
    }
}

TEST(TraceBuilderTest, TakeResets)
{
    TraceBuilder tb(32);
    tb.alu(Opcode::MOV, 1).exit();
    EXPECT_EQ(tb.take().instrs.size(), 2u);
    EXPECT_EQ(tb.size(), 0u);
    tb.alu(Opcode::MOV, 1);
    EXPECT_EQ(tb.take().instrs.size(), 1u);
}

TEST(KernelInfoTest, DerivedCounts)
{
    KernelInfo k;
    k.grid = {4, 2, 1};
    k.cta = {96, 1, 1};
    EXPECT_EQ(k.numCtas(), 8u);
    EXPECT_EQ(k.threadsPerCta(), 96u);
    EXPECT_EQ(k.warpsPerCta(), 3u);
    k.cta = {97, 1, 1};
    EXPECT_EQ(k.warpsPerCta(), 4u);
}

TEST(VectorCtaSourceTest, ReturnsStoredTraces)
{
    CtaTrace a;
    a.warps.emplace_back();
    a.warps.back().instrs.push_back(TraceInstr{});
    VectorCtaSource src({a, CtaTrace{}});
    EXPECT_EQ(src.generate(0).totalInstrs(), 1u);
    EXPECT_EQ(src.generate(1).totalInstrs(), 0u);
}

} // namespace
} // namespace crisp
