#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "mem/cache.hpp"
#include "mem/l2_subsystem.hpp"
#include "mem/mshr.hpp"

namespace crisp
{
namespace
{

// ---------------------------------------------------------------------
// Cache geometry properties, swept over associativities and sizes.
// ---------------------------------------------------------------------

class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(CacheGeometrySweep, CapacityNeverExceeded)
{
    const auto [ways, sets] = GetParam();
    SetAssocCache cache({static_cast<uint64_t>(ways) * sets * kLineBytes,
                         ways, kLineBytes});
    const uint32_t capacity = ways * sets;
    for (uint32_t i = 0; i < capacity * 4; ++i) {
        cache.access(static_cast<Addr>(i) * kLineBytes, false, 0,
                     DataClass::Compute);
        EXPECT_LE(cache.composition().validLines, capacity);
    }
    EXPECT_EQ(cache.composition().validLines, capacity);
}

TEST_P(CacheGeometrySweep, HitAfterFillForEveryLine)
{
    const auto [ways, sets] = GetParam();
    SetAssocCache cache({static_cast<uint64_t>(ways) * sets * kLineBytes,
                         ways, kLineBytes});
    // Working set == capacity: after one pass, everything must hit,
    // whatever the set hash (each line maps to exactly one set, and no
    // set can be over-subscribed when the count equals capacity only if
    // the hash balances; use a small multiple below capacity instead).
    const uint32_t lines = std::max(1u, ways * sets / 4);
    for (uint32_t i = 0; i < lines; ++i) {
        cache.access(static_cast<Addr>(i) * kLineBytes, false, 0,
                     DataClass::Compute);
    }
    uint32_t hits = 0;
    for (uint32_t i = 0; i < lines; ++i) {
        hits += cache
                    .access(static_cast<Addr>(i) * kLineBytes, false, 0,
                            DataClass::Compute)
                    .hit;
    }
    // A quarter-capacity working set should mostly survive; allow a few
    // unlucky set conflicts under the xor-fold hash.
    EXPECT_GE(hits, lines * 3 / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(std::make_tuple(1u, 16u), std::make_tuple(2u, 8u),
                      std::make_tuple(4u, 16u), std::make_tuple(8u, 32u),
                      std::make_tuple(16u, 128u)));

// ---------------------------------------------------------------------
// Set-window partitioning property over window sizes.
// ---------------------------------------------------------------------

class SetWindowSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(SetWindowSweep, ResidencyBoundedByWindow)
{
    const uint32_t window = GetParam();
    const uint32_t ways = 4;
    const uint32_t sets = 32;
    SetAssocCache cache({static_cast<uint64_t>(ways) * sets * kLineBytes,
                         ways, kLineBytes});
    cache.setStreamSetWindow(9, 0, window);
    for (uint32_t i = 0; i < 4 * ways * sets; ++i) {
        cache.access(static_cast<Addr>(i) * kLineBytes, false, 9,
                     DataClass::Texture);
    }
    EXPECT_LE(cache.composition().validLines, window * ways);
    if (window > 0) {
        EXPECT_GE(cache.composition().validLines, (window * ways) / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Windows, SetWindowSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 31u));

// ---------------------------------------------------------------------
// MSHR: every allocated key comes back exactly once.
// ---------------------------------------------------------------------

TEST(MshrProperty, KeysConservedUnderRandomFills)
{
    Rng rng(99);
    Mshr mshr(16, 4);
    std::vector<Addr> lines;
    std::vector<uint64_t> expected;
    uint64_t key = 1;
    for (int round = 0; round < 50; ++round) {
        const Addr line = rng.nextBelow(24) * kLineBytes;
        const auto outcome = mshr.allocate(line, key);
        if (outcome != Mshr::Outcome::Stall) {
            expected.push_back(key);
            if (outcome == Mshr::Outcome::NewEntry) {
                lines.push_back(line);
            }
            ++key;
        }
        // Randomly fill one outstanding line.
        if (!lines.empty() && rng.nextDouble() < 0.4) {
            const size_t pick = rng.nextBelow(lines.size());
            const Addr fill = lines[pick];
            lines.erase(lines.begin() + pick);
            for (uint64_t k : mshr.fill(fill)) {
                auto it =
                    std::find(expected.begin(), expected.end(), k);
                ASSERT_NE(it, expected.end())
                    << "key returned twice or never allocated";
                expected.erase(it);
            }
        }
    }
    for (Addr line : lines) {
        for (uint64_t k : mshr.fill(line)) {
            auto it = std::find(expected.begin(), expected.end(), k);
            ASSERT_NE(it, expected.end());
            expected.erase(it);
        }
    }
    EXPECT_TRUE(expected.empty()) << "keys lost in the MSHR";
}

// ---------------------------------------------------------------------
// DRAM bandwidth accounting property.
// ---------------------------------------------------------------------

class DramBandwidthSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DramBandwidthSweep, BusyCyclesMatchBytesOverBandwidth)
{
    const double bpc = GetParam();
    DramChannel dram(bpc, 100);
    const uint32_t requests = 64;
    Cycle last = 0;
    for (uint32_t i = 0; i < requests; ++i) {
        last = dram.service(0, kLineBytes);
    }
    const double expected_busy = requests * kLineBytes / bpc;
    EXPECT_NEAR(dram.busyCycles(), expected_busy, 1.0);
    // Completion of the last request: full serialization + latency.
    EXPECT_NEAR(static_cast<double>(last), expected_busy + 100.0, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, DramBandwidthSweep,
                         ::testing::Values(8.0, 32.0, 153.8, 395.8));

// ---------------------------------------------------------------------
// Regression: cross-SM MSHR merging must route responses to each SM.
// (Found during bring-up: merged secondary misses from another SM were
// answered to the primary SM, deadlocking the second one.)
// ---------------------------------------------------------------------

TEST(L2Regression, CrossSmMergedMissesRouteToBothSms)
{
    L2Config cfg;
    cfg.numBanks = 1;
    cfg.bankGeometry = {4 * kLineBytes, 2, kLineBytes};
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    std::vector<std::pair<uint32_t, uint64_t>> responses;
    l2.setResponseHandler([&](const MemRequest &r) {
        responses.emplace_back(r.smId, r.completionKey);
    });

    MemRequest a;
    a.line = 0x700;  // unaligned to expose alignment bugs
    a.line = 0x700 / kLineBytes * kLineBytes;
    a.smId = 3;
    a.completionKey = 111;
    MemRequest b = a;
    b.smId = 7;
    b.completionKey = 222;
    ASSERT_TRUE(l2.submit(a, 0));
    ASSERT_TRUE(l2.submit(b, 0));
    Cycle now = 0;
    while (!l2.idle() && now < 10000) {
        ++now;
        l2.step(now);
    }
    ASSERT_EQ(responses.size(), 2u);
    std::sort(responses.begin(), responses.end());
    EXPECT_EQ(responses[0], std::make_pair(3u, uint64_t{111}));
    EXPECT_EQ(responses[1], std::make_pair(7u, uint64_t{222}));
    // Only one DRAM fill was needed despite two requesters.
    EXPECT_EQ(l2.dramRequests(), 1u);
}

// ---------------------------------------------------------------------
// L2 bank bandwidth: a single bank serves at bankBytesPerCycle.
// ---------------------------------------------------------------------

TEST(L2Property, BankBandwidthThrottlesServiceRate)
{
    L2Config cfg;
    cfg.numBanks = 1;
    cfg.bankGeometry = {64 * kLineBytes, 4, kLineBytes};
    cfg.bankBytesPerCycle = 32.0;  // 4 cycles per line
    cfg.bankQueueCapacity = 64;
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    uint32_t responses = 0;
    l2.setResponseHandler([&](const MemRequest &) { ++responses; });

    // Warm 16 lines so they hit, then stream them again and measure the
    // drain rate.
    auto drain = [&](Cycle &now) {
        while (!l2.idle() && now < 100000) {
            ++now;
            l2.step(now);
        }
    };
    Cycle now = 0;
    for (Addr i = 0; i < 16; ++i) {
        MemRequest req;
        req.line = i * kLineBytes;
        req.completionKey = i;
        ASSERT_TRUE(l2.submit(req, now));
    }
    drain(now);
    responses = 0;
    const Cycle start = now;
    for (Addr i = 0; i < 16; ++i) {
        MemRequest req;
        req.line = i * kLineBytes;
        req.completionKey = i;
        ASSERT_TRUE(l2.submit(req, now));
    }
    drain(now);
    EXPECT_EQ(responses, 16u);
    // 16 hits at 4 cycles/line each: at least 64 cycles of bank service.
    EXPECT_GE(now - start, 16u * 4u);
}

// ---------------------------------------------------------------------
// Composition fractions sum to one over valid lines.
// ---------------------------------------------------------------------

TEST(L2Property, CompositionFractionsSumToOne)
{
    L2Config cfg;
    cfg.numBanks = 2;
    cfg.bankGeometry = {16 * kLineBytes, 4, kLineBytes};
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    l2.setResponseHandler([](const MemRequest &) {});
    Cycle now = 0;
    Rng rng(5);
    const DataClass classes[3] = {DataClass::Texture, DataClass::Pipeline,
                                  DataClass::Compute};
    for (int i = 0; i < 200; ++i) {
        MemRequest req;
        req.line = rng.nextBelow(64) * kLineBytes;
        req.dataClass = classes[rng.nextBelow(3)];
        req.write = rng.nextDouble() < 0.3;
        req.completionKey = req.write ? MemRequest::kNoCompletion
                                      : static_cast<uint64_t>(i);
        if (l2.submit(req, now)) {
            for (int s = 0; s < 20; ++s) {
                ++now;
                l2.step(now);
            }
        }
    }
    while (!l2.idle() && now < 100000) {
        ++now;
        l2.step(now);
    }
    const auto comp = l2.composition();
    ASSERT_GT(comp.validLines, 0u);
    const double total = comp.fraction(DataClass::Texture) +
                         comp.fraction(DataClass::Pipeline) +
                         comp.fraction(DataClass::Compute) +
                         comp.fraction(DataClass::Unknown);
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_LE(comp.validFraction(), 1.0);
}


// ---------------------------------------------------------------------
// Sectored cache extension (Accel-Sim-style 32 B sectors in 128 B lines).
// ---------------------------------------------------------------------

TEST(SectoredCache, SectorMissFillsOnlyThatSector)
{
    CacheGeometry g{1024, 2, kLineBytes, kSectorBytes};
    SetAssocCache c(g);
    EXPECT_EQ(g.sectorsPerLine(), 4u);

    // First touch: full line miss installing one sector.
    auto r = c.access(0x0, false, 0, DataClass::Compute);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.sectorMiss);

    // Same sector again: a hit.
    r = c.access(0x0, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.hit);

    // Different sector of the same line: tag hit, sector miss, and no
    // eviction.
    r = c.access(0x0 + kSectorBytes, false, 0, DataClass::Compute);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.sectorMiss);
    EXPECT_FALSE(r.evicted);
    EXPECT_EQ(c.sectorMisses(), 1u);

    // Now that sector is valid too.
    r = c.access(0x0 + kSectorBytes, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.hit);
}

TEST(SectoredCache, EvictionInvalidatesAllSectors)
{
    // 1 set x 1 way, sectored: any new tag evicts and resets sectors.
    CacheGeometry g{kLineBytes, 1, kLineBytes, kSectorBytes};
    SetAssocCache c(g);
    c.access(0x0, false, 0, DataClass::Compute);
    c.access(0x0 + kSectorBytes, false, 0, DataClass::Compute);
    // Evict with a different line.
    auto r = c.access(4 * kLineBytes, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.evicted);
    // The old line returns as a full miss, and its sectors start over.
    r = c.access(0x0 + kSectorBytes, false, 0, DataClass::Compute);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.sectorMiss);  // whole line was gone
    r = c.access(0x0, false, 0, DataClass::Compute);
    EXPECT_TRUE(r.sectorMiss);   // other sector still cold
}

TEST(SectoredCache, UnsectoredGeometryUnchanged)
{
    CacheGeometry g{1024, 2, kLineBytes, 0};
    SetAssocCache c(g);
    EXPECT_EQ(g.sectorsPerLine(), 1u);
    c.access(0x0, false, 0, DataClass::Compute);
    // Whole line valid after one fill: any offset re-access at line
    // granularity hits.
    EXPECT_TRUE(c.access(0x0, false, 0, DataClass::Compute).hit);
    EXPECT_EQ(c.sectorMisses(), 0u);
}

TEST(SectoredCache, SectoredFetchesFewerBytesOnSparseAccess)
{
    // Strided sparse accesses: one 4 B word per line. A sectored cache
    // fetches 32 B per miss, an unsectored one 128 B.
    CacheGeometry sect{64 * kLineBytes, 8, kLineBytes, kSectorBytes};
    CacheGeometry full{64 * kLineBytes, 8, kLineBytes, 0};
    SetAssocCache a(sect);
    SetAssocCache b(full);
    uint64_t bytes_sect = 0;
    uint64_t bytes_full = 0;
    for (Addr i = 0; i < 32; ++i) {
        const Addr addr = i * kLineBytes;
        auto ra = a.access(addr, false, 0, DataClass::Compute);
        if (!ra.hit) {
            bytes_sect += ra.sectorMiss ? kSectorBytes : kSectorBytes;
        }
        auto rb = b.access(addr, false, 0, DataClass::Compute);
        if (!rb.hit) {
            bytes_full += kLineBytes;
        }
    }
    EXPECT_EQ(bytes_sect * 4, bytes_full);
}

} // namespace
} // namespace crisp
