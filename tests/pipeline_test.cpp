#include <gtest/gtest.h>

#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp
{
namespace
{

/** A minimal one-drawcall scene for pipeline unit tests. */
Scene
tinyScene(AddressSpace &heap, ShaderKind kind = ShaderKind::Basic)
{
    Scene scene;
    scene.name = "tiny";
    scene.camera.eye = {0.0f, 0.0f, 3.0f};
    scene.camera.view =
        Mat4::lookAt(scene.camera.eye, {0, 0, 0}, {0, 1, 0});
    scene.camera.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 100.0f);

    Mesh *sphere = scene.addMesh(Mesh::makeSphere("s", 12, 16, 1.0f, heap));
    Material mat;
    mat.name = "m";
    mat.kind = kind;
    const uint32_t n_tex = kind == ShaderKind::Pbr ? 8 : 1;
    for (uint32_t i = 0; i < n_tex; ++i) {
        mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
            "t" + std::to_string(i), 64, 64, TexFormat::RGBA8, heap, 1,
            true, i + 1)));
    }
    Material *m = scene.addMaterial(std::move(mat));
    DrawCall d;
    d.name = "ball";
    d.mesh = sphere;
    d.material = m;
    scene.draws.push_back(std::move(d));
    return scene;
}

PipelineConfig
tinyConfig()
{
    PipelineConfig cfg;
    cfg.width = 96;
    cfg.height = 96;
    return cfg;
}

TEST(PipelineTest, ProducesKernelsAndFragments)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap);
    RenderPipeline pipe(tinyConfig(), heap);
    const RenderSubmission sub = pipe.submit(scene);

    ASSERT_EQ(sub.reports.size(), 1u);
    const DrawcallReport &r = sub.reports[0];
    EXPECT_GT(r.batches, 0u);
    EXPECT_GT(r.vsInvocations, 0u);
    EXPECT_GE(r.vsThreadsLaunched, r.vsInvocations);
    EXPECT_GT(r.fragments, 0u);
    EXPECT_GT(r.fsWarps, 0u);
    ASSERT_EQ(sub.kernels.size(), 2u);  // one VS + one FS kernel
    EXPECT_EQ(sub.kernels[r.vsKernelIndex].name, "ball.vs");
    EXPECT_EQ(sub.kernels[r.fsKernelIndex].name, "ball.fs");
    EXPECT_EQ(sub.kernels[r.vsKernelIndex].numCtas(),
              r.batches);
    EXPECT_EQ(sub.kernels[r.fsKernelIndex].numCtas(), r.fsCtas);
}

TEST(PipelineTest, RendersNonEmptyImage)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap);
    RenderPipeline pipe(tinyConfig(), heap);
    pipe.submit(scene);

    // The sphere fills the view center; its shaded color must differ from
    // the clear color.
    const Framebuffer &fb = pipe.framebuffer();
    const Texel center = fb.colorAt(48, 48);
    const Texel corner = fb.colorAt(1, 1);
    const float center_lum = center.r + center.g + center.b;
    const float corner_lum = corner.r + corner.g + corner.b;
    EXPECT_GT(std::fabs(center_lum - corner_lum), 0.05f);
    // Depth was written under the sphere.
    EXPECT_LT(fb.depthAt(48, 48), 1.0f);
    EXPECT_FLOAT_EQ(fb.depthAt(1, 1), 1.0f);
}

TEST(PipelineTest, VsTraceStructure)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap);
    RenderPipeline pipe(tinyConfig(), heap);
    const RenderSubmission sub = pipe.submit(scene);
    const KernelInfo &vs = sub.kernels[0];

    const CtaTrace cta = vs.source->generate(0);
    ASSERT_FALSE(cta.warps.empty());
    uint32_t ldg = 0;
    uint32_t stg = 0;
    uint32_t exit_count = 0;
    for (const auto &w : cta.warps) {
        for (const auto &in : w.instrs) {
            ldg += in.opcode == Opcode::LDG;
            stg += in.opcode == Opcode::STG;
            exit_count += in.opcode == Opcode::EXIT;
            if (isMemory(in.opcode)) {
                EXPECT_EQ(in.dataClass, DataClass::Pipeline);
                EXPECT_EQ(in.addrs.size(), in.activeLanes());
            }
        }
    }
    // Index fetch + two vertex loads per warp; two output stores per warp.
    EXPECT_EQ(ldg, 3u * cta.warps.size());
    EXPECT_EQ(stg, 2u * cta.warps.size());
    EXPECT_EQ(exit_count, cta.warps.size());
}

TEST(PipelineTest, FsTraceHasTexturesAndColorStore)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap, ShaderKind::Pbr);
    RenderPipeline pipe(tinyConfig(), heap);
    const RenderSubmission sub = pipe.submit(scene);
    ASSERT_EQ(sub.kernels.size(), 2u);
    const KernelInfo &fs = sub.kernels[1];

    const CtaTrace cta = fs.source->generate(0);
    ASSERT_FALSE(cta.warps.empty());
    for (const auto &w : cta.warps) {
        uint32_t tex = 0;
        uint32_t stg = 0;
        for (const auto &in : w.instrs) {
            if (in.opcode == Opcode::TEX) {
                ++tex;
                EXPECT_EQ(in.dataClass, DataClass::Texture);
            }
            if (in.opcode == Opcode::STG) {
                ++stg;
                EXPECT_EQ(in.dataClass, DataClass::Pipeline);
            }
        }
        // One bilinear sample per PBR map: 8 maps x 4 corner fetches.
        EXPECT_EQ(tex, 32u);
        EXPECT_EQ(stg, 1u);  // one color write
    }
}

/** A heavily minified textured plane (distant floor with tiled uv). */
Scene
minifiedScene(AddressSpace &heap)
{
    Scene scene;
    scene.name = "minified";
    scene.camera.eye = {0.0f, 1.5f, 10.0f};
    scene.camera.view =
        Mat4::lookAt(scene.camera.eye, {0, 0, 0}, {0, 1, 0});
    scene.camera.proj = Mat4::perspective(1.0f, 1.0f, 0.1f, 100.0f);
    Mesh *floor = scene.addMesh(
        Mesh::makePlane("floor", 8, 40.0f, 24.0f, heap));
    Material mat;
    mat.name = "m";
    mat.kind = ShaderKind::Basic;
    mat.textures.push_back(scene.addTexture(std::make_unique<Texture2D>(
        "t", 256, 256, TexFormat::RGBA8, heap, 1, true, 3)));
    Material *m = scene.addMaterial(std::move(mat));
    DrawCall d;
    d.name = "floor";
    d.mesh = floor;
    d.material = m;
    scene.draws.push_back(std::move(d));
    return scene;
}

TEST(PipelineTest, LodOffReferencesMoreTextureLines)
{
    AddressSpace heap;
    Scene scene = minifiedScene(heap);

    PipelineConfig on_cfg = tinyConfig();
    RenderPipeline pipe_on(on_cfg, heap);
    const RenderSubmission sub_on = pipe_on.submit(scene);

    PipelineConfig off_cfg = tinyConfig();
    off_cfg.lodEnabled = false;
    RenderPipeline pipe_off(off_cfg, heap);
    const RenderSubmission sub_off = pipe_off.submit(scene);

    const Histogram h_on =
        texLinesPerCtaHistogram(sub_on.kernels[1], 1023);
    const Histogram h_off =
        texLinesPerCtaHistogram(sub_off.kernels[1], 1023);
    // Under minification, without mipmapping every sample lands in the
    // big level-0 image: far more distinct lines per CTA (Fig 9's
    // mechanism). The paper reports up to 6x.
    EXPECT_GT(h_off.mean(), 2.0 * h_on.mean());
}

TEST(PipelineTest, InstancedDrawGeneratesPerInstanceWork)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap);
    // Make the single drawcall instanced (3 instances).
    DrawCall &d = scene.draws[0];
    d.instanceCount = 3;
    d.instanceBufAddr = heap.alloc(64 * 3);
    d.instanceModels = {Mat4::translation({-1.5f, 0, 0}),
                        Mat4::identity(),
                        Mat4::translation({1.5f, 0, 0})};
    d.instanceLayers = {0, 1, 2};

    RenderPipeline pipe(tinyConfig(), heap);
    const RenderSubmission sub = pipe.submit(scene);
    const DrawcallReport &r = sub.reports[0];

    // VS work scales with the instance count.
    AddressSpace heap2;
    Scene single = tinyScene(heap2);
    RenderPipeline pipe2(tinyConfig(), heap2);
    const RenderSubmission sub_single = pipe2.submit(single);
    EXPECT_EQ(r.vsInvocations,
              3u * sub_single.reports[0].vsInvocations);
    EXPECT_EQ(sub.kernels[0].numCtas(), r.batches);
}

TEST(PipelineTest, SubmissionReplaysOnGpu)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap);
    RenderPipeline pipe(tinyConfig(), heap);
    const RenderSubmission sub = pipe.submit(scene);

    GpuConfig cfg;
    cfg.numSms = 4;
    cfg.l2.numBanks = 4;
    cfg.l2.bankGeometry = {256 * 1024, 16, kLineBytes};
    cfg.finalize();
    Gpu gpu(cfg);
    const StreamId gfx = gpu.createStream("gfx");
    submitFrame(gpu, gfx, sub);
    const auto result = gpu.run(10'000'000);
    ASSERT_TRUE(result.completed);
    const auto &st = gpu.stats().stream(gfx);
    EXPECT_EQ(st.kernelsCompleted, 2u);
    EXPECT_GT(st.l1TexAccesses, 0u);
    EXPECT_GT(st.instructions, 0u);
    // Texture data flowed into the L2.
    const auto comp = gpu.l2().composition();
    EXPECT_GT(comp.byClass[static_cast<size_t>(DataClass::Texture)], 0u);
    EXPECT_GT(comp.byClass[static_cast<size_t>(DataClass::Pipeline)], 0u);
}

TEST(PipelineTest, SceneBuildersProduceRenderableScenes)
{
    for (const std::string &name : allSceneNames()) {
        AddressSpace heap;
        Scene scene = buildSceneByName(name, heap);
        EXPECT_EQ(scene.name, name);
        ASSERT_FALSE(scene.draws.empty()) << name;

        PipelineConfig cfg;
        cfg.width = 80;
        cfg.height = 48;
        RenderPipeline pipe(cfg, heap);
        const RenderSubmission sub = pipe.submit(scene);
        EXPECT_GT(sub.totalVsInvocations(), 0u) << name;
        EXPECT_GT(sub.totalFragments(), 0u) << name;
        EXPECT_FALSE(sub.kernels.empty()) << name;
    }
}


TEST(PipelineTest, DepthTrafficOptionAddsEarlyZAccesses)
{
    AddressSpace heap;
    Scene scene = tinyScene(heap);
    PipelineConfig cfg = tinyConfig();
    cfg.emitDepthTraffic = true;
    RenderPipeline pipe(cfg, heap);
    const RenderSubmission sub = pipe.submit(scene);
    ASSERT_EQ(sub.kernels.size(), 2u);
    const CtaTrace cta = sub.kernels[1].source->generate(0);
    uint32_t depth_loads = 0;
    uint32_t stores = 0;
    for (const auto &in : cta.warps[0].instrs) {
        depth_loads += in.opcode == Opcode::LDG && in.accessBytes == 4;
        stores += in.opcode == Opcode::STG;
    }
    // One early-Z read per fragment plus the depth write and color write.
    EXPECT_GE(depth_loads, 1u);
    EXPECT_EQ(stores, 2u);

    // Default configuration emits no depth traffic (ROP skipped, SIII).
    AddressSpace heap2;
    Scene scene2 = tinyScene(heap2);
    RenderPipeline plain(tinyConfig(), heap2);
    const RenderSubmission sub2 = plain.submit(scene2);
    const CtaTrace cta2 = sub2.kernels[1].source->generate(0);
    uint32_t stores2 = 0;
    for (const auto &in : cta2.warps[0].instrs) {
        stores2 += in.opcode == Opcode::STG;
    }
    EXPECT_EQ(stores2, 1u);
}

} // namespace
} // namespace crisp
