# Empty compiler generated dependencies file for fig11_l2_composition.
# This may be replaced when dependencies are built.
