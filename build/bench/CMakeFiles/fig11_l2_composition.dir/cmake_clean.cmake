file(REMOVE_RECURSE
  "CMakeFiles/fig11_l2_composition.dir/fig11_l2_composition.cpp.o"
  "CMakeFiles/fig11_l2_composition.dir/fig11_l2_composition.cpp.o.d"
  "fig11_l2_composition"
  "fig11_l2_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_l2_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
