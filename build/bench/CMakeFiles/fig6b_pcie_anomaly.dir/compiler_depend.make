# Empty compiler generated dependencies file for fig6b_pcie_anomaly.
# This may be replaced when dependencies are built.
