file(REMOVE_RECURSE
  "CMakeFiles/fig6b_pcie_anomaly.dir/fig6b_pcie_anomaly.cpp.o"
  "CMakeFiles/fig6b_pcie_anomaly.dir/fig6b_pcie_anomaly.cpp.o.d"
  "fig6b_pcie_anomaly"
  "fig6b_pcie_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_pcie_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
