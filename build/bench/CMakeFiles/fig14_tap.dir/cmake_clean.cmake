file(REMOVE_RECURSE
  "CMakeFiles/fig14_tap.dir/fig14_tap.cpp.o"
  "CMakeFiles/fig14_tap.dir/fig14_tap.cpp.o.d"
  "fig14_tap"
  "fig14_tap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
