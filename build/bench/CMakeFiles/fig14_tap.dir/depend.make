# Empty dependencies file for fig14_tap.
# This may be replaced when dependencies are built.
