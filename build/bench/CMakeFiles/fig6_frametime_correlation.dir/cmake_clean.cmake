file(REMOVE_RECURSE
  "CMakeFiles/fig6_frametime_correlation.dir/fig6_frametime_correlation.cpp.o"
  "CMakeFiles/fig6_frametime_correlation.dir/fig6_frametime_correlation.cpp.o.d"
  "fig6_frametime_correlation"
  "fig6_frametime_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_frametime_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
