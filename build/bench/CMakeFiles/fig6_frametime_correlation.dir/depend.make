# Empty dependencies file for fig6_frametime_correlation.
# This may be replaced when dependencies are built.
