# Empty compiler generated dependencies file for micro_raster.
# This may be replaced when dependencies are built.
