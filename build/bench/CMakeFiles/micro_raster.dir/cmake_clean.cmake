file(REMOVE_RECURSE
  "CMakeFiles/micro_raster.dir/micro_raster.cpp.o"
  "CMakeFiles/micro_raster.dir/micro_raster.cpp.o.d"
  "micro_raster"
  "micro_raster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_raster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
