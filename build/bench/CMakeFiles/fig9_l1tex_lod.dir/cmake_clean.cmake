file(REMOVE_RECURSE
  "CMakeFiles/fig9_l1tex_lod.dir/fig9_l1tex_lod.cpp.o"
  "CMakeFiles/fig9_l1tex_lod.dir/fig9_l1tex_lod.cpp.o.d"
  "fig9_l1tex_lod"
  "fig9_l1tex_lod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_l1tex_lod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
