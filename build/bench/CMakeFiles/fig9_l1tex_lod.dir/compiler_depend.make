# Empty compiler generated dependencies file for fig9_l1tex_lod.
# This may be replaced when dependencies are built.
