file(REMOVE_RECURSE
  "CMakeFiles/fig12_warped_slicer.dir/fig12_warped_slicer.cpp.o"
  "CMakeFiles/fig12_warped_slicer.dir/fig12_warped_slicer.cpp.o.d"
  "fig12_warped_slicer"
  "fig12_warped_slicer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_warped_slicer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
