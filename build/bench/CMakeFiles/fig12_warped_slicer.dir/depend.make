# Empty dependencies file for fig12_warped_slicer.
# This may be replaced when dependencies are built.
