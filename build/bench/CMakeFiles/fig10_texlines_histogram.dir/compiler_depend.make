# Empty compiler generated dependencies file for fig10_texlines_histogram.
# This may be replaced when dependencies are built.
