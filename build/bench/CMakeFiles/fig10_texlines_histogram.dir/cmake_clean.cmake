file(REMOVE_RECURSE
  "CMakeFiles/fig10_texlines_histogram.dir/fig10_texlines_histogram.cpp.o"
  "CMakeFiles/fig10_texlines_histogram.dir/fig10_texlines_histogram.cpp.o.d"
  "fig10_texlines_histogram"
  "fig10_texlines_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_texlines_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
