# Empty dependencies file for fig15_tap_l2_composition.
# This may be replaced when dependencies are built.
