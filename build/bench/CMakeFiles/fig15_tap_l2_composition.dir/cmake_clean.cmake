file(REMOVE_RECURSE
  "CMakeFiles/fig15_tap_l2_composition.dir/fig15_tap_l2_composition.cpp.o"
  "CMakeFiles/fig15_tap_l2_composition.dir/fig15_tap_l2_composition.cpp.o.d"
  "fig15_tap_l2_composition"
  "fig15_tap_l2_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tap_l2_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
