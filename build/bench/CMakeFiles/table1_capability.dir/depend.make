# Empty dependencies file for table1_capability.
# This may be replaced when dependencies are built.
