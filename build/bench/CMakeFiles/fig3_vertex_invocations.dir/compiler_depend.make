# Empty compiler generated dependencies file for fig3_vertex_invocations.
# This may be replaced when dependencies are built.
