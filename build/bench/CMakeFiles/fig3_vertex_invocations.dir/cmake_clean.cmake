file(REMOVE_RECURSE
  "CMakeFiles/fig3_vertex_invocations.dir/fig3_vertex_invocations.cpp.o"
  "CMakeFiles/fig3_vertex_invocations.dir/fig3_vertex_invocations.cpp.o.d"
  "fig3_vertex_invocations"
  "fig3_vertex_invocations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vertex_invocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
