file(REMOVE_RECURSE
  "CMakeFiles/graphics_test.dir/graphics_test.cpp.o"
  "CMakeFiles/graphics_test.dir/graphics_test.cpp.o.d"
  "graphics_test"
  "graphics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
