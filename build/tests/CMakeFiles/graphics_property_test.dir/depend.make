# Empty dependencies file for graphics_property_test.
# This may be replaced when dependencies are built.
