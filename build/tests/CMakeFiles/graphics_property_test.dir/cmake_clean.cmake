file(REMOVE_RECURSE
  "CMakeFiles/graphics_property_test.dir/graphics_property_test.cpp.o"
  "CMakeFiles/graphics_property_test.dir/graphics_property_test.cpp.o.d"
  "graphics_property_test"
  "graphics_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphics_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
