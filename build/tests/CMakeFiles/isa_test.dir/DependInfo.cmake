
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/isa_test.cpp" "tests/CMakeFiles/isa_test.dir/isa_test.cpp.o" "gcc" "tests/CMakeFiles/isa_test.dir/isa_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/crisp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/crisp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/crisp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/graphics/CMakeFiles/crisp_graphics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/crisp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/crisp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/crisp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crisp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
