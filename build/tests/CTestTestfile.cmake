# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(isa_test "/root/repo/build/tests/isa_test")
set_tests_properties(isa_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gpu_test "/root/repo/build/tests/gpu_test")
set_tests_properties(gpu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graphics_test "/root/repo/build/tests/graphics_test")
set_tests_properties(graphics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_test "/root/repo/build/tests/pipeline_test")
set_tests_properties(pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(partition_test "/root/repo/build/tests/partition_test")
set_tests_properties(partition_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_property_test "/root/repo/build/tests/mem_property_test")
set_tests_properties(mem_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_property_test "/root/repo/build/tests/core_property_test")
set_tests_properties(core_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graphics_property_test "/root/repo/build/tests/graphics_property_test")
set_tests_properties(graphics_property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(concurrent_test "/root/repo/build/tests/concurrent_test")
set_tests_properties(concurrent_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;crisp_add_test;/root/repo/tests/CMakeLists.txt;0;")
