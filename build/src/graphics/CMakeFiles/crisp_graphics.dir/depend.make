# Empty dependencies file for crisp_graphics.
# This may be replaced when dependencies are built.
