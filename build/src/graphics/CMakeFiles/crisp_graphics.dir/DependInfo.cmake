
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphics/batching.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/batching.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/batching.cpp.o.d"
  "/root/repo/src/graphics/framebuffer.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/framebuffer.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/framebuffer.cpp.o.d"
  "/root/repo/src/graphics/mesh.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/mesh.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/mesh.cpp.o.d"
  "/root/repo/src/graphics/pipeline.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/pipeline.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/pipeline.cpp.o.d"
  "/root/repo/src/graphics/raster.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/raster.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/raster.cpp.o.d"
  "/root/repo/src/graphics/sampler.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/sampler.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/sampler.cpp.o.d"
  "/root/repo/src/graphics/shader.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/shader.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/shader.cpp.o.d"
  "/root/repo/src/graphics/texture.cpp" "src/graphics/CMakeFiles/crisp_graphics.dir/texture.cpp.o" "gcc" "src/graphics/CMakeFiles/crisp_graphics.dir/texture.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/crisp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/crisp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
