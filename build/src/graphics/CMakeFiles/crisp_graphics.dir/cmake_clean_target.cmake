file(REMOVE_RECURSE
  "libcrisp_graphics.a"
)
