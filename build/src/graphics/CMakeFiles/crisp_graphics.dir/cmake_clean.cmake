file(REMOVE_RECURSE
  "CMakeFiles/crisp_graphics.dir/batching.cpp.o"
  "CMakeFiles/crisp_graphics.dir/batching.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/framebuffer.cpp.o"
  "CMakeFiles/crisp_graphics.dir/framebuffer.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/mesh.cpp.o"
  "CMakeFiles/crisp_graphics.dir/mesh.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/pipeline.cpp.o"
  "CMakeFiles/crisp_graphics.dir/pipeline.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/raster.cpp.o"
  "CMakeFiles/crisp_graphics.dir/raster.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/sampler.cpp.o"
  "CMakeFiles/crisp_graphics.dir/sampler.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/shader.cpp.o"
  "CMakeFiles/crisp_graphics.dir/shader.cpp.o.d"
  "CMakeFiles/crisp_graphics.dir/texture.cpp.o"
  "CMakeFiles/crisp_graphics.dir/texture.cpp.o.d"
  "libcrisp_graphics.a"
  "libcrisp_graphics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_graphics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
