# Empty dependencies file for crisp_common.
# This may be replaced when dependencies are built.
