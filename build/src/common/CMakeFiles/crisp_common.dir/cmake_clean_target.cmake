file(REMOVE_RECURSE
  "libcrisp_common.a"
)
