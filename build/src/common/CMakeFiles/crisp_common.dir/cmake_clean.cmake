file(REMOVE_RECURSE
  "CMakeFiles/crisp_common.dir/logging.cpp.o"
  "CMakeFiles/crisp_common.dir/logging.cpp.o.d"
  "CMakeFiles/crisp_common.dir/metrics.cpp.o"
  "CMakeFiles/crisp_common.dir/metrics.cpp.o.d"
  "CMakeFiles/crisp_common.dir/rng.cpp.o"
  "CMakeFiles/crisp_common.dir/rng.cpp.o.d"
  "CMakeFiles/crisp_common.dir/stats.cpp.o"
  "CMakeFiles/crisp_common.dir/stats.cpp.o.d"
  "CMakeFiles/crisp_common.dir/table.cpp.o"
  "CMakeFiles/crisp_common.dir/table.cpp.o.d"
  "libcrisp_common.a"
  "libcrisp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
