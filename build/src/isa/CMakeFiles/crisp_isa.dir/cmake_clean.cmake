file(REMOVE_RECURSE
  "CMakeFiles/crisp_isa.dir/opcode.cpp.o"
  "CMakeFiles/crisp_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/crisp_isa.dir/trace.cpp.o"
  "CMakeFiles/crisp_isa.dir/trace.cpp.o.d"
  "CMakeFiles/crisp_isa.dir/trace_builder.cpp.o"
  "CMakeFiles/crisp_isa.dir/trace_builder.cpp.o.d"
  "libcrisp_isa.a"
  "libcrisp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
