
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/opcode.cpp" "src/isa/CMakeFiles/crisp_isa.dir/opcode.cpp.o" "gcc" "src/isa/CMakeFiles/crisp_isa.dir/opcode.cpp.o.d"
  "/root/repo/src/isa/trace.cpp" "src/isa/CMakeFiles/crisp_isa.dir/trace.cpp.o" "gcc" "src/isa/CMakeFiles/crisp_isa.dir/trace.cpp.o.d"
  "/root/repo/src/isa/trace_builder.cpp" "src/isa/CMakeFiles/crisp_isa.dir/trace_builder.cpp.o" "gcc" "src/isa/CMakeFiles/crisp_isa.dir/trace_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/crisp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
