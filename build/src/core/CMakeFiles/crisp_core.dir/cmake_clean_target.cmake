file(REMOVE_RECURSE
  "libcrisp_core.a"
)
