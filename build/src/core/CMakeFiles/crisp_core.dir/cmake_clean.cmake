file(REMOVE_RECURSE
  "CMakeFiles/crisp_core.dir/sm.cpp.o"
  "CMakeFiles/crisp_core.dir/sm.cpp.o.d"
  "CMakeFiles/crisp_core.dir/sm_config.cpp.o"
  "CMakeFiles/crisp_core.dir/sm_config.cpp.o.d"
  "libcrisp_core.a"
  "libcrisp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
