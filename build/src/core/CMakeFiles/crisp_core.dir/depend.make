# Empty dependencies file for crisp_core.
# This may be replaced when dependencies are built.
