# Empty compiler generated dependencies file for crisp_partition.
# This may be replaced when dependencies are built.
