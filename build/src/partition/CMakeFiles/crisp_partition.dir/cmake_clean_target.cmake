file(REMOVE_RECURSE
  "libcrisp_partition.a"
)
