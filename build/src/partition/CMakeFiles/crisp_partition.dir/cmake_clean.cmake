file(REMOVE_RECURSE
  "CMakeFiles/crisp_partition.dir/tap.cpp.o"
  "CMakeFiles/crisp_partition.dir/tap.cpp.o.d"
  "CMakeFiles/crisp_partition.dir/warped_slicer.cpp.o"
  "CMakeFiles/crisp_partition.dir/warped_slicer.cpp.o.d"
  "libcrisp_partition.a"
  "libcrisp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
