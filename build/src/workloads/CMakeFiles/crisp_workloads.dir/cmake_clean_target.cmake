file(REMOVE_RECURSE
  "libcrisp_workloads.a"
)
