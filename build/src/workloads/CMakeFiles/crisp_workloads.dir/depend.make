# Empty dependencies file for crisp_workloads.
# This may be replaced when dependencies are built.
