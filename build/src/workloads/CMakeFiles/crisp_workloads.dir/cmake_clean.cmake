file(REMOVE_RECURSE
  "CMakeFiles/crisp_workloads.dir/compute.cpp.o"
  "CMakeFiles/crisp_workloads.dir/compute.cpp.o.d"
  "CMakeFiles/crisp_workloads.dir/oracle.cpp.o"
  "CMakeFiles/crisp_workloads.dir/oracle.cpp.o.d"
  "CMakeFiles/crisp_workloads.dir/scenes.cpp.o"
  "CMakeFiles/crisp_workloads.dir/scenes.cpp.o.d"
  "libcrisp_workloads.a"
  "libcrisp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
