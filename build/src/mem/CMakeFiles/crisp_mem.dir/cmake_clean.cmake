file(REMOVE_RECURSE
  "CMakeFiles/crisp_mem.dir/cache.cpp.o"
  "CMakeFiles/crisp_mem.dir/cache.cpp.o.d"
  "CMakeFiles/crisp_mem.dir/dram.cpp.o"
  "CMakeFiles/crisp_mem.dir/dram.cpp.o.d"
  "CMakeFiles/crisp_mem.dir/icnt.cpp.o"
  "CMakeFiles/crisp_mem.dir/icnt.cpp.o.d"
  "CMakeFiles/crisp_mem.dir/l2_subsystem.cpp.o"
  "CMakeFiles/crisp_mem.dir/l2_subsystem.cpp.o.d"
  "CMakeFiles/crisp_mem.dir/mshr.cpp.o"
  "CMakeFiles/crisp_mem.dir/mshr.cpp.o.d"
  "libcrisp_mem.a"
  "libcrisp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
