file(REMOVE_RECURSE
  "libcrisp_mem.a"
)
