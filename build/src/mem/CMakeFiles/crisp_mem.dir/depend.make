# Empty dependencies file for crisp_mem.
# This may be replaced when dependencies are built.
