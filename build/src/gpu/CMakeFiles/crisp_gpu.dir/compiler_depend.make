# Empty compiler generated dependencies file for crisp_gpu.
# This may be replaced when dependencies are built.
