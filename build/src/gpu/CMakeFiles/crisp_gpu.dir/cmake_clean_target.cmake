file(REMOVE_RECURSE
  "libcrisp_gpu.a"
)
