file(REMOVE_RECURSE
  "CMakeFiles/crisp_gpu.dir/gpu.cpp.o"
  "CMakeFiles/crisp_gpu.dir/gpu.cpp.o.d"
  "CMakeFiles/crisp_gpu.dir/gpu_config.cpp.o"
  "CMakeFiles/crisp_gpu.dir/gpu_config.cpp.o.d"
  "libcrisp_gpu.a"
  "libcrisp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
