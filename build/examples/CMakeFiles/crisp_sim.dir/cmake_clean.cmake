file(REMOVE_RECURSE
  "CMakeFiles/crisp_sim.dir/crisp_sim.cpp.o"
  "CMakeFiles/crisp_sim.dir/crisp_sim.cpp.o.d"
  "crisp_sim"
  "crisp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crisp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
