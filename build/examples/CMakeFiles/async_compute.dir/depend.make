# Empty dependencies file for async_compute.
# This may be replaced when dependencies are built.
