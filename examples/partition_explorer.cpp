/**
 * @file
 * Partition explorer: sweeps the intra-SM resource split between a
 * rendering scene and a compute workload and reports per-stream progress
 * at each ratio — the design-space view that motivates dynamic mechanisms
 * like Warped-Slicer (§III-A: "the partition ratio can be changed
 * dynamically to maximize resource utilization").
 *
 * Usage: partition_explorer [scene=PL] [compute=NN]
 */

#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

using namespace crisp;

namespace
{

std::vector<KernelInfo>
computeByName(const std::string &name, AddressSpace &heap)
{
    if (name == "VIO") {
        return buildVio(heap);
    }
    if (name == "HOLO") {
        return buildHolo(heap);
    }
    return buildNn(heap);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string scene_name = argc > 1 ? argv[1] : "PL";
    const std::string compute_name = argc > 2 ? argv[2] : "NN";
    const GpuConfig gpu_cfg = GpuConfig::jetsonOrin();

    AddressSpace heap;
    const Scene scene = buildSceneByName(scene_name, heap);
    PipelineConfig pc;
    pc.width = 480;
    pc.height = 270;
    AddressSpace fb_heap(0x4000'0000ull);
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission frame = pipe.submit(scene);

    std::printf("pair: %s + %s on %s, intra-SM share sweep\n\n",
                scene_name.c_str(), compute_name.c_str(),
                gpu_cfg.name.c_str());
    Table t({"gfx share", "makespan", "gfx done", "cmp done", "gfx IPC",
             "cmp IPC"});
    Cycle best = ~0ull;
    double best_share = 0.0;
    for (double share : {0.2, 0.35, 0.5, 0.65, 0.8}) {
        AddressSpace cheap(0x8000'0000ull);
        Gpu gpu(gpu_cfg);
        const StreamId gfx = gpu.createStream("graphics");
        const StreamId cmp = gpu.createStream("compute");
        submitFrame(gpu, gfx, frame);
        for (const KernelInfo &k : computeByName(compute_name, cheap)) {
            gpu.enqueueKernel(cmp, k);
        }
        PartitionConfig part;
        part.policy = PartitionPolicy::FineGrained;
        part.share[gfx] = share;
        part.priorityStream = gfx;
        gpu.setPartition(part);
        const auto r = gpu.run(2'000'000'000ull);
        fatal_if(!r.completed, "run did not drain");
        if (r.cycles < best) {
            best = r.cycles;
            best_share = share;
        }
        t.addRow({Table::num(share, 2), std::to_string(r.cycles),
                  std::to_string(gpu.streamFinishCycle(gfx)),
                  std::to_string(gpu.streamFinishCycle(cmp)),
                  Table::num(gpu.stats().stream(gfx).ipc(), 2),
                  Table::num(gpu.stats().stream(cmp).ipc(), 2)});
    }
    std::printf("%s\n", t.toText().c_str());
    std::printf("best static split for this pair: %.2f "
                "(different pairs prefer different ratios, which is what "
                "dynamic repartitioning exploits)\n",
                best_share);
    return 0;
}
