/**
 * @file
 * CRISP quickstart: render one frame of a small scene while a compute
 * kernel shares the GPU, then print per-stream statistics.
 *
 * This walks the full public API surface:
 *   1. build a Scene (procedural assets in a simulated address space),
 *   2. run the functional rendering pipeline to get trace kernels,
 *   3. create a Gpu from a Table II preset and two streams,
 *   4. pick a partitioning policy and replay rendering + compute together.
 */

#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

using namespace crisp;

int
main()
{
    setVerbose(false);

    // 1. A scene and a rendering pipeline at a reduced resolution.
    AddressSpace heap;
    Scene scene = buildPlatformer(heap);
    PipelineConfig pipe_cfg;
    pipe_cfg.width = 320;
    pipe_cfg.height = 180;
    RenderPipeline pipeline(pipe_cfg, heap);

    // 2. Functional render: fills the framebuffer and yields trace kernels.
    RenderSubmission frame = pipeline.submit(scene);
    std::printf("scene %s: %zu drawcalls, %llu VS invocations, "
                "%llu fragments\n",
                scene.name.c_str(), frame.reports.size(),
                static_cast<unsigned long long>(frame.totalVsInvocations()),
                static_cast<unsigned long long>(frame.totalFragments()));
    pipeline.framebuffer().writePpm("quickstart_frame.ppm");
    std::printf("wrote quickstart_frame.ppm\n");

    // 3. A Jetson Orin GPU with a graphics stream and a compute stream.
    Gpu gpu(GpuConfig::jetsonOrin());
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId cmp = gpu.createStream("compute");
    submitFrame(gpu, gfx, frame);
    for (const KernelInfo &k : buildVio(heap)) {
        gpu.enqueueKernel(cmp, k);
    }

    // 4. Fine-grained intra-SM sharing (async-compute style), even split.
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    gpu.setPartition(part);

    const auto result = gpu.run(200'000'000ull);
    std::printf("simulation %s after %llu cycles (%.3f ms on %s)\n\n",
                result.completed ? "completed" : "timed out",
                static_cast<unsigned long long>(result.cycles),
                gpu.config().cyclesToMs(result.cycles),
                gpu.config().name.c_str());

    Table table({"stream", "kernels", "instructions", "IPC", "L1 hit%",
                 "L2 hit%", "tex accesses"});
    for (const auto &[id, st] : gpu.stats().allStreams()) {
        table.addRow({id == gfx ? "graphics" : "compute",
                      std::to_string(st.kernelsCompleted),
                      std::to_string(st.instructions),
                      Table::num(st.ipc(), 2),
                      Table::num(100.0 * st.l1HitRate(), 1),
                      Table::num(100.0 * st.l2HitRate(), 1),
                      std::to_string(st.l1TexAccesses)});
    }
    std::printf("%s", table.toText().c_str());
    return 0;
}
