/**
 * @file
 * Multi-frame animation: orbit the camera around the Planets scene,
 * render and simulate each frame, and report per-frame timing plus a
 * per-kernel breakdown of the last frame — the frame-sequence workflow an
 * XR runtime drives (render, then asynchronous timewarp, every frame).
 *
 * Usage: animation [frames=6] [--dump-frames]
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

using namespace crisp;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const uint32_t frames =
        argc > 1 && std::isdigit(argv[1][0])
            ? static_cast<uint32_t>(std::atoi(argv[1]))
            : 6;
    bool dump = false;
    for (int i = 1; i < argc; ++i) {
        dump |= std::strcmp(argv[i], "--dump-frames") == 0;
    }

    AddressSpace heap;
    Scene scene = buildPlanets(heap);
    PipelineConfig pc;
    pc.width = 480;
    pc.height = 270;
    RenderPipeline pipe(pc, heap);
    const GpuConfig gpu_cfg = GpuConfig::jetsonOrin();

    Table t({"frame", "camera angle", "fragments", "sim cycles",
             "frame ms", "ATW ms"});
    std::vector<RenderSubmission> keep;  // traces must outlive the run
    for (uint32_t f = 0; f < frames; ++f) {
        // Orbit the camera.
        const float angle =
            2.0f * static_cast<float>(M_PI) * f / frames;
        const Vec3 eye = {30.0f * std::sin(angle), 14.0f,
                          30.0f * std::cos(angle)};
        scene.camera.eye = eye;
        scene.camera.view = Mat4::lookAt(eye, {0, 0, 0}, {0, 1, 0});

        keep.push_back(pipe.submit(scene));
        const RenderSubmission &sub = keep.back();
        if (dump) {
            char name[64];
            std::snprintf(name, sizeof(name), "planets_f%02u.ppm", f);
            pipe.framebuffer().writePpm(name);
        }

        // Per frame: render, then timewarp the result (async compute).
        Gpu gpu(gpu_cfg);
        const StreamId gfx = gpu.createStream("graphics");
        const StreamId atw = gpu.createStream("atw");
        submitFrame(gpu, gfx, sub);
        AddressSpace cheap(0x8000'0000ull);
        for (const KernelInfo &k :
             buildTimewarp(cheap, pipe.framebuffer().colorAddr(0, 0),
                           pc.width, pc.height)) {
            gpu.enqueueKernel(atw, k);
        }
        PartitionConfig part;
        part.policy = PartitionPolicy::FineGrained;
        part.priorityStream = gfx;
        gpu.setPartition(part);
        const auto r = gpu.run(2'000'000'000ull);
        fatal_if(!r.completed, "frame %u did not drain", f);

        t.addRow({std::to_string(f),
                  Table::num(angle * 180.0 / M_PI, 0) + " deg",
                  std::to_string(sub.totalFragments()),
                  std::to_string(r.cycles),
                  Table::num(gpu_cfg.cyclesToMs(gpu.streamFinishCycle(gfx)),
                             4),
                  Table::num(gpu_cfg.cyclesToMs(gpu.streamFinishCycle(atw)),
                             4)});

        if (f + 1 == frames) {
            std::printf("last frame kernel breakdown:\n");
            Table kt({"kernel", "stream", "CTAs", "launch", "complete",
                      "cycles"});
            for (const auto &rec : gpu.kernelLog()) {
                kt.addRow({rec.name,
                           rec.stream == gfx ? "gfx" : "atw",
                           std::to_string(rec.ctas),
                           std::to_string(rec.launchCycle),
                           std::to_string(rec.completeCycle),
                           std::to_string(rec.completeCycle -
                                          rec.launchCycle)});
            }
            std::printf("%s\n", kt.toText().c_str());
        }
    }
    std::printf("%s", t.toText().c_str());
    std::printf("\nframe times vary with the camera angle (visible "
                "asteroid count changes the fragment load); the timewarp "
                "pass overlaps rendering as async compute.\n");
    return 0;
}
