/**
 * @file
 * Functional rendering demo: renders any evaluation scene to a PPM image
 * (the paper's Fig 5 shows Planets rendered by the model), and with
 * --lod-compare renders Sponza twice — mipmapping on and off — to
 * reproduce the visual comparison of Fig 8 (LoD off shows texture moire;
 * mipmapping anti-aliases naturally during downsampling).
 *
 * Usage:
 *   render_image [scene] [width] [height] [out.ppm]
 *   render_image --lod-compare
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hpp"
#include "graphics/pipeline.hpp"
#include "workloads/scenes.hpp"

using namespace crisp;

namespace
{

void
renderOne(const std::string &scene_name, uint32_t width, uint32_t height,
          bool lod, const std::string &out)
{
    AddressSpace heap;
    const Scene scene = buildSceneByName(scene_name, heap);
    PipelineConfig pc;
    pc.width = width;
    pc.height = height;
    pc.lodEnabled = lod;
    RenderPipeline pipe(pc, heap);
    const RenderSubmission sub = pipe.submit(scene);
    pipe.framebuffer().writePpm(out);
    std::printf("%s @ %ux%u (LoD %s): %zu drawcalls, %llu fragments -> "
                "%s\n",
                scene_name.c_str(), width, height, lod ? "on" : "off",
                sub.reports.size(),
                static_cast<unsigned long long>(sub.totalFragments()),
                out.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    if (argc > 1 && std::strcmp(argv[1], "--lod-compare") == 0) {
        // Fig 8: Sponza with and without mipmapping.
        renderOne("SPL", 640, 360, true, "sponza_lod_on.ppm");
        renderOne("SPL", 640, 360, false, "sponza_lod_off.ppm");
        std::printf("compare sponza_lod_on.ppm vs sponza_lod_off.ppm: "
                    "without LoD the tiled floor aliases (moire), with LoD "
                    "the mip chain anti-aliases it.\n");
        return 0;
    }

    const std::string scene = argc > 1 ? argv[1] : "IT";
    const uint32_t width =
        argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 960;
    const uint32_t height =
        argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3])) : 540;
    const std::string out = argc > 4 ? argv[4] : scene + ".ppm";
    renderOne(scene, width, height, true, out);
    return 0;
}
