/**
 * @file
 * crisp_sim: the command-line simulator driver.
 *
 * Composes any rendering scene with any compute workload on either GPU
 * preset under any partitioning method, runs the cycle-level simulation
 * and prints (optionally CSV-dumps) per-stream statistics — the front
 * door a user points their own experiments at.
 *
 * Usage:
 *   crisp_sim [options]
 *     --scenario FILE   drive the run from a scenario JSON file; the
 *                       file's graphics/compute/gpu sections replace
 *                       --scene/--compute/--gpu/--width/--height/--lod/
 *                       --frames (partitioning flags still apply)
 *     --scene NAME      SPL|SPH|PT|IT|PL|MT|none        (default SPL)
 *     --compute NAME    VIO|HOLO|NN|ATW|none            (default none)
 *     --gpu NAME        rtx3070|orin                    (default rtx3070)
 *     --policy NAME     exhaustive|mps|mig|fg|fg-slicer|mps-tap
 *     --width N --height N                              (default 640x360)
 *     --share F         graphics resource share under fg (default 0.5)
 *     --lod 0|1         mipmapped texturing              (default 1)
 *     --frames N        frames to render                 (default 1)
 *     --image FILE      dump the rendered frame as PPM
 *     --csv FILE        dump per-stream stats as CSV
 *     --kernels         print the per-kernel execution log
 *     --trace FILE      write a Chrome trace_event JSON (Perfetto-loadable)
 *     --max-cycles N    stop the simulation after N cycles; a capped
 *                       run that did not drain is reported, not fatal
 *     --sample N        sample counters every N cycles (see --timeline)
 *     --timeline FILE   dump the sampled counter time-series as CSV
 *     --profile         print the simulator's wall-clock self-profile
 *     --threads N       worker threads stepping SM shards    (default 1)
 *     --fast-forward    jump over machine-wide idle cycles
 *     --quiet           suppress the banner
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "gpu/gpu.hpp"
#include "mgpu/multi_gpu.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/sink.hpp"
#include "graphics/pipeline.hpp"
#include "partition/tap.hpp"
#include "partition/warped_slicer.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

using namespace crisp;

namespace
{

struct Options
{
    std::string scenario;
    std::string scene = "SPL";
    std::string compute = "none";
    std::string gpu = "rtx3070";
    std::string policy = "exhaustive";
    uint32_t width = 640;
    uint32_t height = 360;
    double share = 0.5;
    bool lod = true;
    uint32_t frames = 1;
    std::string image;
    std::string csv;
    bool kernels = false;
    std::string trace;
    Cycle maxCycles = 8'000'000'000ull;
    bool maxCyclesSet = false;
    Cycle sample = 0;
    std::string timeline;
    bool profile = false;
    uint32_t threads = 1;
    bool fastForward = false;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int &i) -> const char * {
        fatal_if(i + 1 >= argc, "missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--scenario") {
            opt.scenario = need(i);
        } else if (a == "--scene") {
            opt.scene = need(i);
        } else if (a == "--compute") {
            opt.compute = need(i);
        } else if (a == "--gpu") {
            opt.gpu = need(i);
        } else if (a == "--policy") {
            opt.policy = need(i);
        } else if (a == "--width") {
            opt.width = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (a == "--height") {
            opt.height = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (a == "--share") {
            opt.share = std::atof(need(i));
        } else if (a == "--lod") {
            opt.lod = std::atoi(need(i)) != 0;
        } else if (a == "--frames") {
            opt.frames = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (a == "--image") {
            opt.image = need(i);
        } else if (a == "--csv") {
            opt.csv = need(i);
        } else if (a == "--kernels") {
            opt.kernels = true;
        } else if (a == "--trace") {
            opt.trace = need(i);
        } else if (a == "--max-cycles") {
            opt.maxCycles = static_cast<Cycle>(std::atoll(need(i)));
            opt.maxCyclesSet = true;
        } else if (a == "--sample") {
            opt.sample = static_cast<Cycle>(std::atoll(need(i)));
        } else if (a == "--timeline") {
            opt.timeline = need(i);
        } else if (a == "--profile") {
            opt.profile = true;
        } else if (a == "--threads") {
            opt.threads = static_cast<uint32_t>(std::atoi(need(i)));
        } else if (a == "--fast-forward") {
            opt.fastForward = true;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--help" || a == "-h") {
            std::printf("see the header of examples/crisp_sim.cpp\n");
            std::exit(0);
        } else {
            fatal("unknown option %s", a.c_str());
        }
    }
    if (!opt.scenario.empty()) {
        // The scenario file owns the workload description.
        opt.scene = "none";
        opt.compute = "none";
    }
    fatal_if(opt.scenario.empty() && opt.scene == "none" &&
                 opt.compute == "none",
             "nothing to simulate: pass --scenario, --scene and/or "
             "--compute");
    return opt;
}

/**
 * Multi-GPU scenarios (gpu.num_gpus > 1) run here: one Gpu per device
 * plus the inter-GPU fabric, with the scenario's placement deciding the
 * per-device partitioning — the --policy/--share flags do not apply.
 * Fast-forward is also ignored: devices step in lockstep through the
 * fabric, so per-device idle jumps cannot compose.
 */
int
runMultiGpu(const Options &opt, const scenario::Scenario &scn)
{
    mgpu::MultiGpuConfig mcfg;
    mcfg.numGpus = scn.gpu.numGpus;
    mcfg.gpu = scenario::gpuConfigFor(scn);
    mgpu::MultiGpu machine(mcfg);
    {
        engine::EngineConfig ec;
        ec.threads = opt.threads;
        machine.setEngine(ec);
    }

    // One telemetry sink per device; the Chrome trace merges them into
    // labelled "gpu<d>" process groups, the timeline CSV gets one file
    // per device (path.gpu<d>).
    std::vector<std::unique_ptr<telemetry::TelemetrySink>> sinks;
    const bool wants_telemetry = !opt.trace.empty() || opt.sample != 0 ||
        !opt.timeline.empty() || opt.profile;
    if (wants_telemetry) {
        for (uint32_t d = 0; d < mcfg.numGpus; ++d) {
            telemetry::TelemetryConfig tc;
            tc.eventCapacity = 1 << 20;
            tc.sampleInterval = opt.sample;
            if (!opt.timeline.empty() && tc.sampleInterval == 0) {
                tc.sampleInterval = 1000;
            }
            tc.selfProfile = opt.profile && d == 0;
            sinks.push_back(
                std::make_unique<telemetry::TelemetrySink>(tc));
            machine.device(d).setTelemetry(sinks.back().get());
        }
    }

    scenario::Materialized mat;
    const scenario::MultiSubmitResult sr =
        scenario::submitScenarioMulti(scn, machine, mat);
    if (!sinks.empty() && opt.profile && mat.pipeline) {
        mat.pipeline->setProfiler(&sinks[0]->profiler());
    }

    if (!opt.quiet) {
        const char *placement =
            scn.gpu.placement == scenario::Placement::Split ? "split"
            : scn.gpu.placement == scenario::Placement::Colocated
                ? "colocated"
                : "mig";
        std::printf("crisp_sim: scenario=%s (\"%s\") gpus=%ux%s "
                    "placement=%s\n",
                    opt.scenario.c_str(), scn.name.c_str(), mcfg.numGpus,
                    mcfg.gpu.name.c_str(), placement);
    }

    const mgpu::MultiGpu::RunResult r = machine.run(opt.maxCycles);
    for (const auto &v : r.violations) {
        std::fprintf(stderr, "audit violation [%s] %s\n", v.check.c_str(),
                     v.detail.c_str());
    }
    fatal_if(!r.violations.empty(), "multi-GPU audit failed");
    if (!r.completed && opt.maxCyclesSet) {
        std::printf("stopped at --max-cycles %llu before draining\n",
                    static_cast<unsigned long long>(opt.maxCycles));
    } else {
        fatal_if(!r.completed, "simulation did not drain");
    }

    if (!sinks.empty() && !opt.trace.empty()) {
        std::vector<const telemetry::TelemetrySink *> views;
        for (const auto &s : sinks) {
            views.push_back(s.get());
        }
        telemetry::writeChromeTrace(views, opt.trace);
        std::printf("wrote %s (%u devices)\n", opt.trace.c_str(),
                    mcfg.numGpus);
    }
    if (!sinks.empty() && !opt.timeline.empty()) {
        for (uint32_t d = 0; d < mcfg.numGpus; ++d) {
            const std::string path =
                opt.timeline + ".gpu" + std::to_string(d);
            sinks[d]->series().toTable().writeCsv(path);
            std::printf("wrote %s (%zu samples)\n", path.c_str(),
                        sinks[d]->series().rows());
        }
    }
    if (!opt.image.empty() && mat.pipeline) {
        mat.pipeline->framebuffer().writePpm(opt.image);
    }

    const mgpu::InterGpuFabric &fabric = machine.fabric();
    std::printf("total: %llu cycles = %.4f ms on %u x %s (fabric: %llu "
                "remote reqs, %llu migrations, %llu bytes)\n\n",
                static_cast<unsigned long long>(r.cycles),
                mcfg.gpu.cyclesToMs(r.cycles), mcfg.numGpus,
                mcfg.gpu.name.c_str(),
                static_cast<unsigned long long>(fabric.requestsAccepted()),
                static_cast<unsigned long long>(fabric.pageMigrations()),
                static_cast<unsigned long long>(
                    fabric.bytesTransferred()));

    Table t({"stream", "device", "cycles(first..last)", "kernels",
             "instructions", "IPC", "L2 hit%", "remote", "dram rd"});
    auto add_stream = [&](const char *name, StreamId id, uint32_t dev) {
        if (id == kInvalidStream) {
            return;
        }
        Gpu &gpu = machine.device(dev);
        const StreamStats &st = gpu.stats().stream(id);
        t.addRow({name, std::to_string(dev),
                  std::to_string(st.firstCycle) + ".." +
                      std::to_string(gpu.streamFinishCycle(id)),
                  std::to_string(st.kernelsCompleted),
                  std::to_string(st.instructions), Table::num(st.ipc(), 2),
                  Table::num(100 * st.l2HitRate(), 1),
                  std::to_string(st.remoteAccesses),
                  std::to_string(st.dramReads)});
    };
    add_stream("graphics", sr.gfx, sr.gfxDevice);
    add_stream("compute", sr.cmp, sr.cmpDevice);
    std::printf("%s", t.toText().c_str());
    if (!opt.csv.empty()) {
        t.writeCsv(opt.csv);
        std::printf("wrote %s\n", opt.csv.c_str());
    }
    if (opt.kernels) {
        std::printf("\nper-kernel execution log:\n");
        Table kt({"kernel", "device", "stream", "CTAs", "launch",
                  "complete", "cycles"});
        for (uint32_t d = 0; d < mcfg.numGpus; ++d) {
            for (const auto &rec : machine.device(d).kernelLog()) {
                kt.addRow({rec.name, std::to_string(d),
                           rec.stream == sr.gfx ? "graphics" : "compute",
                           std::to_string(rec.ctas),
                           std::to_string(rec.launchCycle),
                           std::to_string(rec.completeCycle),
                           std::to_string(rec.completeCycle -
                                          rec.launchCycle)});
            }
        }
        std::printf("%s", kt.toText().c_str());
    }
    if (!sinks.empty() && opt.profile) {
        std::printf("\nsimulator self-profile (wall clock):\n%s",
                    sinks[0]->profiler().render(r.cycles).c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const Options opt = parseArgs(argc, argv);

    scenario::Scenario scn;
    if (!opt.scenario.empty()) {
        scenario::ScenarioError serr;
        if (!scenario::loadScenarioFile(opt.scenario, scn, serr)) {
            fatal("%s", serr.str().c_str());
        }
        if (scn.gpu.numGpus > 1) {
            return runMultiGpu(opt, scn);
        }
    }

    const GpuConfig gpu_cfg = !opt.scenario.empty()
        ? scenario::gpuConfigFor(scn)
        : opt.gpu == "orin" ? GpuConfig::jetsonOrin()
        : opt.gpu == "rtx3070"
        ? GpuConfig::rtx3070()
        : (fatal("unknown gpu %s", opt.gpu.c_str()), GpuConfig{});

    Gpu gpu(gpu_cfg);
    {
        engine::EngineConfig ec;
        ec.threads = opt.threads;
        ec.fastForward = opt.fastForward;
        gpu.setEngine(ec);
    }
    AddressSpace heap;
    std::unique_ptr<Scene> scene;
    std::unique_ptr<RenderPipeline> pipeline;
    RenderSubmission frame;
    StreamId gfx = kInvalidStream;
    StreamId cmp = kInvalidStream;

    if (opt.scene != "none") {
        scene = std::make_unique<Scene>(buildSceneByName(opt.scene, heap));
        PipelineConfig pc;
        pc.width = opt.width;
        pc.height = opt.height;
        pc.lodEnabled = opt.lod;
        pipeline = std::make_unique<RenderPipeline>(pc, heap);
        gfx = gpu.createStream("graphics");
    }
    if (opt.compute != "none") {
        cmp = gpu.createStream("compute");
    }

    // Telemetry: one sink serves --trace, --sample/--timeline, --profile.
    // Attached before any frame is submitted so the self-profiler also
    // sees the functional rasterization work.
    std::unique_ptr<telemetry::TelemetrySink> sink;
    const bool wants_telemetry = !opt.trace.empty() || opt.sample != 0 ||
        !opt.timeline.empty() || opt.profile;
    if (wants_telemetry) {
        telemetry::TelemetryConfig tc;
        tc.eventCapacity = 1 << 20;
        tc.sampleInterval = opt.sample;
        if (!opt.timeline.empty() && tc.sampleInterval == 0) {
            tc.sampleInterval = 1000;
        }
        tc.selfProfile = opt.profile;
        sink = std::make_unique<telemetry::TelemetrySink>(tc);
        gpu.setTelemetry(sink.get());
        if (opt.profile && pipeline) {
            pipeline->setProfiler(&sink->profiler());
        }
    }

    // Queue the work.
    scenario::Materialized mat;
    if (!opt.scenario.empty()) {
        const scenario::SubmitResult sr =
            scenario::submitScenario(scn, gpu, heap, mat);
        gfx = sr.gfx;
        cmp = sr.cmp;
        if (sink && opt.profile && mat.pipeline) {
            mat.pipeline->setProfiler(&sink->profiler());
        }
    }
    std::vector<RenderSubmission> frames;
    for (uint32_t f = 0; f < opt.frames && pipeline; ++f) {
        frames.push_back(pipeline->submit(*scene));
        submitFrame(gpu, gfx, frames.back());
    }
    if (cmp != kInvalidStream && opt.scenario.empty()) {
        std::vector<KernelInfo> kernels;
        if (opt.compute == "VIO") {
            kernels = buildVio(heap, opt.frames);
        } else if (opt.compute == "HOLO") {
            kernels = buildHolo(heap);
        } else if (opt.compute == "NN") {
            kernels = buildNn(heap);
        } else if (opt.compute == "ATW") {
            const Addr color = pipeline
                ? pipeline->framebuffer().colorAddr(0, 0)
                : heap.alloc(4ull * opt.width * opt.height);
            kernels = buildTimewarp(heap, color, opt.width, opt.height);
        } else {
            fatal("unknown compute workload %s", opt.compute.c_str());
        }
        for (const KernelInfo &k : kernels) {
            gpu.enqueueKernel(cmp, k);
        }
    }

    // Partitioning.
    PartitionConfig part;
    std::unique_ptr<WarpedSlicer> slicer;
    std::unique_ptr<TapController> tap;
    if (opt.policy == "exhaustive") {
        part.policy = PartitionPolicy::Exhaustive;
    } else if (opt.policy == "mps" || opt.policy == "mps-tap") {
        part.policy = PartitionPolicy::Mps;
    } else if (opt.policy == "mig") {
        part.policy = PartitionPolicy::Mig;
    } else if (opt.policy == "fg" || opt.policy == "fg-slicer") {
        part.policy = PartitionPolicy::FineGrained;
        if (gfx != kInvalidStream) {
            part.share[gfx] = opt.share;
            part.priorityStream = gfx;
        }
    } else {
        fatal("unknown policy %s", opt.policy.c_str());
    }
    gpu.setPartition(part);
    if (opt.policy == "fg-slicer" && gfx != kInvalidStream &&
        cmp != kInvalidStream) {
        WarpedSlicerConfig wc;
        wc.streamA = gfx;
        wc.streamB = cmp;
        slicer = std::make_unique<WarpedSlicer>(wc);
        gpu.addController(slicer.get());
    }
    if (opt.policy == "mps-tap" && gfx != kInvalidStream &&
        cmp != kInvalidStream) {
        TapConfig tc;
        tc.gfxStream = gfx;
        tc.computeStream = cmp;
        tap = std::make_unique<TapController>(tc, gpu);
        gpu.addController(tap.get());
    }

    if (!opt.quiet) {
        if (!opt.scenario.empty()) {
            std::printf("crisp_sim: scenario=%s (\"%s\") gpu=%s "
                        "policy=%s\n",
                        opt.scenario.c_str(), scn.name.c_str(),
                        gpu_cfg.name.c_str(), opt.policy.c_str());
        } else {
            std::printf("crisp_sim: scene=%s compute=%s gpu=%s policy=%s "
                        "%ux%u lod=%d frames=%u\n",
                        opt.scene.c_str(), opt.compute.c_str(),
                        gpu_cfg.name.c_str(), opt.policy.c_str(),
                        opt.width, opt.height, opt.lod ? 1 : 0,
                        opt.frames);
        }
    }

    const auto r = gpu.run(opt.maxCycles);
    if (!r.completed && opt.maxCyclesSet) {
        std::printf("stopped at --max-cycles %llu before draining\n",
                    static_cast<unsigned long long>(opt.maxCycles));
    } else {
        fatal_if(!r.completed, "simulation did not drain");
    }

    if (sink && !opt.trace.empty()) {
        telemetry::writeChromeTrace(*sink, opt.trace);
        std::printf("wrote %s (%llu events, %llu dropped)\n",
                    opt.trace.c_str(),
                    static_cast<unsigned long long>(sink->emitted()),
                    static_cast<unsigned long long>(sink->dropped()));
    }
    if (sink && !opt.timeline.empty()) {
        sink->series().toTable().writeCsv(opt.timeline);
        std::printf("wrote %s (%zu samples)\n", opt.timeline.c_str(),
                    sink->series().rows());
    }

    RenderPipeline *fb_pipeline =
        pipeline ? pipeline.get() : mat.pipeline.get();
    if (!opt.image.empty() && fb_pipeline) {
        fb_pipeline->framebuffer().writePpm(opt.image);
    }

    Table t({"stream", "cycles(first..last)", "kernels", "instructions",
             "IPC", "L1 hit%", "L2 hit%", "tex acc", "dram rd"});
    auto add_stream = [&](const char *name, StreamId id) {
        if (id == kInvalidStream) {
            return;
        }
        const StreamStats &st = gpu.stats().stream(id);
        t.addRow({name,
                  std::to_string(st.firstCycle) + ".." +
                      std::to_string(gpu.streamFinishCycle(id)),
                  std::to_string(st.kernelsCompleted),
                  std::to_string(st.instructions), Table::num(st.ipc(), 2),
                  Table::num(100 * st.l1HitRate(), 1),
                  Table::num(100 * st.l2HitRate(), 1),
                  std::to_string(st.l1TexAccesses),
                  std::to_string(st.dramReads)});
    };
    add_stream("graphics", gfx);
    add_stream("compute", cmp);
    std::printf("total: %llu cycles = %.4f ms on %s (L2 hit %.1f%%, DRAM "
                "busy %.1f%%)\n\n",
                static_cast<unsigned long long>(r.cycles),
                gpu_cfg.cyclesToMs(r.cycles), gpu_cfg.name.c_str(),
                100.0 * gpu.l2().hitRate(),
                100.0 * gpu.l2().dramBusyCycles() / r.cycles);
    if (opt.fastForward) {
        std::printf("fast-forward: %llu jumps skipped %llu idle cycles\n",
                    static_cast<unsigned long long>(gpu.fastForwardJumps()),
                    static_cast<unsigned long long>(
                        gpu.fastForwardCycles()));
    }
    std::printf("%s", t.toText().c_str());
    if (!opt.csv.empty()) {
        t.writeCsv(opt.csv);
        std::printf("wrote %s\n", opt.csv.c_str());
    }
    if (opt.kernels) {
        std::printf("\nper-kernel execution log:\n");
        Table kt({"kernel", "stream", "CTAs", "launch", "complete",
                  "cycles"});
        for (const auto &rec : gpu.kernelLog()) {
            kt.addRow({rec.name,
                       rec.stream == gfx ? "graphics" : "compute",
                       std::to_string(rec.ctas),
                       std::to_string(rec.launchCycle),
                       std::to_string(rec.completeCycle),
                       std::to_string(rec.completeCycle -
                                      rec.launchCycle)});
        }
        std::printf("%s", kt.toText().c_str());
    }
    if (sink && opt.profile) {
        std::printf("\nsimulator self-profile (wall clock):\n%s",
                    sink->profiler().render(r.cycles).c_str());
    }
    return 0;
}
