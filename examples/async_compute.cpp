/**
 * @file
 * Async compute demo: one frame of Sponza PBR shares a Jetson Orin with
 * the VIO pipeline under each partitioning method the simulator models
 * (§III-A, Fig 4) — serial, default exhaustive, MPS, MiG and fine-grained
 * intra-SM — and prints where the time goes for each.
 */

#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "workloads/compute.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

using namespace crisp;

int
main()
{
    setVerbose(false);
    const GpuConfig gpu_cfg = GpuConfig::jetsonOrin();

    AddressSpace heap;
    const Scene scene = buildSponza(heap, /*pbr=*/true);
    PipelineConfig pc;
    pc.width = 480;
    pc.height = 270;
    AddressSpace fb_heap(0x4000'0000ull);
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission frame = pipe.submit(scene);

    struct Config
    {
        const char *name;
        bool twoStreams;
        PartitionPolicy policy;
        bool priority;
    };
    const Config configs[] = {
        {"serial (one stream)", false, PartitionPolicy::Exhaustive, false},
        {"exhaustive (2 streams)", true, PartitionPolicy::Exhaustive,
         false},
        {"MPS (SM split)", true, PartitionPolicy::Mps, false},
        {"MiG (SM + L2 banks)", true, PartitionPolicy::Mig, false},
        {"async compute (intra-SM)", true, PartitionPolicy::FineGrained,
         true},
    };

    Table t({"configuration", "total cycles", "gfx done", "vio done",
             "gfx IPC", "vio IPC"});
    for (const Config &cfg : configs) {
        AddressSpace cheap(0x8000'0000ull);
        Gpu gpu(gpu_cfg);
        const StreamId gfx = gpu.createStream("graphics");
        const StreamId cmp =
            cfg.twoStreams ? gpu.createStream("compute") : gfx;
        submitFrame(gpu, gfx, frame);
        for (const KernelInfo &k : buildVio(cheap)) {
            gpu.enqueueKernel(cmp, k);
        }
        PartitionConfig part;
        part.policy = cfg.policy;
        if (cfg.priority) {
            part.priorityStream = gfx;
        }
        gpu.setPartition(part);
        const auto r = gpu.run(2'000'000'000ull);
        fatal_if(!r.completed, "run did not drain");
        t.addRow({cfg.name, std::to_string(r.cycles),
                  std::to_string(gpu.streamFinishCycle(gfx)),
                  cfg.twoStreams
                      ? std::to_string(gpu.streamFinishCycle(cmp))
                      : "(same stream)",
                  Table::num(gpu.stats().stream(gfx).ipc(), 2),
                  cfg.twoStreams
                      ? Table::num(gpu.stats().stream(cmp).ipc(), 2)
                      : "-"});
    }
    std::printf("%s\n", t.toText().c_str());
    std::printf("Concurrent schemes overlap the VIO system task with the "
                "frame; async compute shares every SM and lets compute "
                "fill idle issue slots.\n");
    return 0;
}
