/**
 * @file
 * Scenario-driven golden bench: runs the three checked-in stress
 * scenarios (deforming flag, ray traversal, game + inference) end to end
 * through the scenario loader and pins their counters. The suite proves
 * the data-driven path — loader, builders, arrival schedules — produces
 * the same machine behaviour run over run; any drift in the generators
 * or the scheduler shows up as a golden diff naming the scenario.
 *
 * Runs from the repository root (the golden suite's working directory)
 * so the scenario files resolve as scenarios/<name>.json.
 */

#include "bench_util.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

struct Row
{
    const char *file;
    uint64_t gfxKernels = 0;
    uint64_t cmpKernels = 0;
    Cycle cycles = 0;
    uint64_t instructions = 0;
    uint64_t dramReads = 0;
    uint64_t dramWrites = 0;
};

Row
runScenario(const char *file)
{
    Row row;
    row.file = file;

    scenario::Scenario sc;
    scenario::ScenarioError err;
    fatal_if(!scenario::loadScenarioFile(
                 std::string("scenarios/") + file, sc, err),
             "%s", err.str().c_str());

    Gpu gpu(scenario::gpuConfigFor(sc));
    engine::EngineConfig ec;
    ec.threads = 1;
    ec.fastForward = true;  // burst gaps are mostly idle cycles
    gpu.setEngine(ec);

    AddressSpace heap;
    scenario::Materialized mat;
    const scenario::SubmitResult sr =
        scenario::submitScenario(sc, gpu, heap, mat);
    const auto r = runAudited(gpu, 8'000'000'000ull);
    fatal_if(!r.completed, "scenario %s did not drain", file);

    row.cycles = r.cycles;
    if (sr.gfx != kInvalidStream) {
        row.gfxKernels = gpu.stats().stream(sr.gfx).kernelsCompleted;
    }
    if (sr.cmp != kInvalidStream) {
        row.cmpKernels = gpu.stats().stream(sr.cmp).kernelsCompleted;
    }
    row.instructions = gpu.stats().sumOver(&StreamStats::instructions);
    row.dramReads = gpu.stats().sumOver(&StreamStats::dramReads);
    row.dramWrites = gpu.stats().sumOver(&StreamStats::dramWrites);
    return row;
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Scenario suite", "checked-in stress scenarios, counters pinned");

    const char *files[] = {
        "deforming_flag.json",
        "ray_traversal.json",
        "game_inference.json",
    };

    Table t({"scenario", "gfx kernels", "cmp kernels", "cycles",
             "instructions", "dram reads", "dram writes"});
    for (const char *f : files) {
        const Row row = runScenario(f);
        t.addRow({row.file, std::to_string(row.gfxKernels),
                  std::to_string(row.cmpKernels),
                  std::to_string(row.cycles),
                  std::to_string(row.instructions),
                  std::to_string(row.dramReads),
                  std::to_string(row.dramWrites)});
    }
    t.emit("scenario_suite.csv");
    return 0;
}
