/**
 * @file
 * Ablations of the memory-system parameters DESIGN.md calls out:
 *
 *  1. Unified L1 size (the carveout between L1 and shared memory):
 *     graphics leans on the L1 as its texture cache (§III), so the slice
 *     size moves frame time directly.
 *  2. L2 bank (slice) bandwidth: the lever behind Fig 14's MiG result —
 *     restricting a stream to fewer banks restricts its L2 bandwidth.
 *  3. L1 MSHR entries: memory-level parallelism of the texture path.
 */

#include "bench_util.hpp"
#include "workloads/submit.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

struct FrameCycleResult
{
    Cycle cycles;
    double l1Hit;
    double l2Hit;
};

FrameCycleResult
timeFrame(const Scene &scene, const GpuConfig &cfg)
{
    PipelineConfig pc;
    pc.width = k2kWidth;
    pc.height = k2kHeight;
    AddressSpace fb_heap(0x4000'0000ull);
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission sub = pipe.submit(scene);
    Gpu gpu(cfg);
    const StreamId gfx = gpu.createStream("graphics");
    submitFrame(gpu, gfx, sub);
    const auto r = gpu.run(2'000'000'000ull);
    fatal_if(!r.completed, "frame did not drain");
    const StreamStats &st = gpu.stats().stream(gfx);
    return {r.cycles, st.l1HitRate(), st.l2HitRate()};
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Ablations", "memory system parameters");

    AddressSpace heap;
    const Scene scene = buildSponza(heap, /*pbr=*/true);

    // --- 1. L1 carveout sweep -------------------------------------------
    std::printf("1) unified L1 slice size (SPH):\n");
    Table t1({"L1 size", "frame cycles", "L1 hit%", "L2 hit%"});
    for (uint32_t kb : {8u, 16u, 32u, 64u, 128u}) {
        GpuConfig cfg = GpuConfig::rtx3070();
        cfg.sm.l1SizeBytes = kb * 1024;
        const auto r = timeFrame(scene, cfg);
        t1.addRow({std::to_string(kb) + " KB", std::to_string(r.cycles),
                   Table::num(100 * r.l1Hit, 1),
                   Table::num(100 * r.l2Hit, 1)});
    }
    t1.emit("ablation_l1.csv");
    std::printf("the unified L1 doubles as the texture cache; shrinking "
                "it pushes texture reuse out to the L2 (§III).\n\n");

    // --- 2. L2 slice bandwidth sweep ------------------------------------
    std::printf("2) L2 bank bandwidth (SPH):\n");
    Table t2({"bytes/cycle/bank", "frame cycles", "vs 32B"});
    Cycle base = 0;
    for (double bpc : {8.0, 16.0, 32.0, 64.0, 128.0}) {
        GpuConfig cfg = GpuConfig::rtx3070();
        cfg.l2.bankBytesPerCycle = bpc;
        const auto r = timeFrame(scene, cfg);
        if (bpc == 32.0) {
            base = r.cycles;
        }
        t2.addRow({Table::num(bpc, 0), std::to_string(r.cycles),
                   base ? Table::num(static_cast<double>(r.cycles) / base,
                                     2)
                        : "-"});
    }
    t2.emit("ablation_l2bw.csv");
    std::printf("halving per-stream bank count under MiG is equivalent "
                "to halving this bandwidth — the Fig 14 slowdown.\n\n");

    // --- 3. L1 MSHR sweep -------------------------------------------------
    std::printf("3) L1 MSHR entries (SPH):\n");
    Table t3({"MSHR entries", "frame cycles"});
    for (uint32_t entries : {4u, 8u, 16u, 48u, 96u}) {
        GpuConfig cfg = GpuConfig::rtx3070();
        cfg.sm.l1MshrEntries = entries;
        const auto r = timeFrame(scene, cfg);
        t3.addRow({std::to_string(entries), std::to_string(r.cycles)});
    }
    t3.emit("ablation_mshr.csv");
    std::printf("few MSHRs serialize texture misses and destroy the "
                "memory-level parallelism the warp scheduler exposes.\n");

    // --- 4. Sectored vs unsectored L1 (texture traffic study) ------------
    std::printf("4) sectored cache fill traffic (SPL texture stream):\n");
    {
        AddressSpace h4;
        const Scene s4 = buildSponza(h4, /*pbr=*/false);
        PipelineConfig pc4;
        pc4.width = k2kWidth;
        pc4.height = k2kHeight;
        AddressSpace fbh(0x4000'0000ull);
        RenderPipeline pipe(pc4, fbh);
        const RenderSubmission sub = pipe.submit(s4);

        SetAssocCache unsectored({32 * 1024, 8, kLineBytes, 0});
        SetAssocCache sectored({32 * 1024, 8, kLineBytes, kSectorBytes});
        uint64_t bytes_full = 0;
        uint64_t bytes_sect = 0;
        uint64_t accesses = 0;
        for (const KernelInfo &k : sub.kernels) {
            for (uint32_t c = 0; c < k.numCtas(); ++c) {
                const CtaTrace cta = k.source->generate(c);
                for (const auto &w : cta.warps) {
                    for (const auto &in : w.instrs) {
                        if (in.opcode != Opcode::TEX) {
                            continue;
                        }
                        for (Addr line : coalesceToLines(in)) {
                            ++accesses;
                            if (!unsectored
                                     .access(line, false, 0,
                                             DataClass::Texture)
                                     .hit) {
                                bytes_full += kLineBytes;
                            }
                        }
                        for (Addr sec : coalesceToSectors(in)) {
                            if (!sectored
                                     .access(sec, false, 0,
                                             DataClass::Texture)
                                     .hit) {
                                bytes_sect += kSectorBytes;
                            }
                        }
                    }
                }
            }
        }
        Table t4({"organization", "fill bytes", "vs line-grain"});
        t4.addRow({"line-grain (128 B fills)", std::to_string(bytes_full),
                   "1.00"});
        t4.addRow({"sectored (32 B fills)", std::to_string(bytes_sect),
                   Table::num(static_cast<double>(bytes_sect) /
                                  std::max<uint64_t>(1, bytes_full), 2)});
        t4.emit("ablation_sectors.csv");
        std::printf("(%llu coalesced texture line-accesses replayed; "
                    "sectoring trades fill bandwidth for extra sector "
                    "misses, the Accel-Sim Ampere cache organization)\n",
                    static_cast<unsigned long long>(accesses));
    }
    return 0;
}
