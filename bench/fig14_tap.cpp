/**
 * @file
 * Fig 14: TAP on the shared L2 vs MiG bank partitioning vs MPS, RTX 3070.
 *
 * All pairs run under inter-SM (MPS-style) even SM splits; the schemes
 * differ only in the L2: fully shared (MPS), bank-partitioned (MiG), and
 * TAP set-partitioned. The paper finds TAP outperforms MiG and matches the
 * MPS baseline — the workload pairs are bandwidth-bound, not
 * capacity-bound, and MiG's restricted bank set throttles L2 bandwidth.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 14", "TAP vs MiG vs MPS (RTX 3070)");
    const GpuConfig gpu_cfg = GpuConfig::rtx3070();
    const std::vector<std::string> scenes = {"SPH", "SPL", "PT"};
    const std::vector<std::string> computes = {"VIO", "HOLO", "NN"};

    Table t({"pair", "MPS", "MiG", "TAP", "MiG vs MPS", "TAP vs MPS"});
    std::vector<double> mig_rel;
    std::vector<double> tap_rel;
    uint64_t tap_windows = 0;
    for (const auto &scene : scenes) {
        for (const auto &cmp : computes) {
            const Cycle mps =
                runPair(scene, cmp, gpu_cfg, PairScheme::MpsEven, 480, 270)
                    .makespan;
            const Cycle mig =
                runPair(scene, cmp, gpu_cfg, PairScheme::MigEven, 480, 270)
                    .makespan;
            // Trace the TAP runs: the controller emits a TapWindow event
            // per window boundary where it re-evaluates the set split.
            telemetry::TelemetrySink sink;
            const Cycle tap =
                runPair(scene, cmp, gpu_cfg, PairScheme::MpsTap, 480, 270,
                        [&](Gpu &gpu, StreamId, StreamId) {
                            gpu.setTelemetry(&sink);
                        })
                    .makespan;
            tap_windows += sink.count(telemetry::EventKind::TapWindow);
            const double mig_speed = static_cast<double>(mps) / mig;
            const double tap_speed = static_cast<double>(mps) / tap;
            mig_rel.push_back(mig_speed);
            tap_rel.push_back(tap_speed);
            t.addRow({scene + "+" + cmp, std::to_string(mps),
                      std::to_string(mig), std::to_string(tap),
                      Table::num(mig_speed, 2), Table::num(tap_speed, 2)});
        }
    }
    t.emit("fig14_tap.csv");

    const double mig_gm = geomean(mig_rel);
    const double tap_gm = geomean(tap_rel);
    std::printf("geomean vs MPS: MiG %.2fx, TAP %.2fx\n", mig_gm, tap_gm);
    std::printf("TAP window decisions traced: %llu\n",
                static_cast<unsigned long long>(tap_windows));
    std::printf("paper: TAP outperforms MiG and matches MPS — the pairs "
                "are bandwidth-bound, not capacity-bound.\n");
    return tap_gm >= mig_gm ? 0 : 1;
}
