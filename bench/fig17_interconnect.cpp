/**
 * @file
 * Fig 17: frame time and remote-traffic share vs inter-GPU link
 * bandwidth, remote access vs page migration. A rendered frame owns
 * device 0 while an inference-style reader on device 1 streams over a
 * buffer homed in device 0's window; every miss rides the fabric. The
 * sweep shows the makespan collapsing as the link widens, and page
 * migration converting steady remote traffic into a one-time copy — at
 * narrow links the migration mode wins decisively, at wide links the
 * two converge.
 */

#include "bench_util.hpp"
#include "mgpu/multi_gpu.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

/** The device-1 reader: inference-style streaming over remote weights. */
KernelInfo
remoteReader(Addr base, uint64_t bytes)
{
    ComputeKernelDesc d;
    d.name = "weights.reader";
    d.ctas = 16;
    d.threadsPerCta = 128;
    d.regsPerThread = 32;
    d.iterations = 8;
    d.fp32Ops = 8;
    MemPattern p;
    p.kind = MemPatternKind::Streaming;
    p.base = base;
    p.regionBytes = bytes;
    p.accessBytes = 16;
    p.count = 2;
    d.loads.push_back(p);
    return buildComputeKernel(d);
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Fig 17", "frame time and remote share vs link bandwidth, "
                     "remote access vs page migration");

    Table t({"link B/cyc", "mode", "cycles", "frame ms", "remote reqs",
             "migrations", "remote share%", "fabric KiB"});

    const double bandwidths[] = {8.0, 32.0, 128.0};
    const struct
    {
        const char *name;
        uint32_t migrateAfter;
    } modes[] = {{"remote-access", 0}, {"page-migration", 4}};

    for (const double bw : bandwidths) {
        for (const auto &mode : modes) {
            mgpu::MultiGpuConfig cfg = mgpu::MultiGpuConfig::dualRtx3070();
            cfg.gpu.numSms = 16;
            cfg.gpu.finalize();
            cfg.fabric.linkBytesPerCycle = bw;
            cfg.fabric.migrateAfter = mode.migrateAfter;
            mgpu::MultiGpu machine(cfg);

            // Device 0 renders; its window also homes the weights the
            // device-1 reader streams over.
            AddressSpace heap;
            const Scene scene = buildSceneByName("PT", heap);
            AddressSpace fb_heap(0x4000'0000ull);
            PipelineConfig pc;
            pc.width = 320;
            pc.height = 240;
            RenderPipeline pipe(pc, fb_heap);
            const RenderSubmission sub = pipe.submit(scene);
            Gpu &dev0 = machine.device(0);
            const StreamId gfx = dev0.createStream("graphics");
            submitFrame(dev0, gfx, sub);

            AddressSpace weights_heap(0x8000'0000ull);
            const uint64_t weights_bytes = 1ull << 20;
            const Addr weights = weights_heap.alloc(weights_bytes);
            Gpu &dev1 = machine.device(1);
            const StreamId cmp = dev1.createStream("compute");
            dev1.enqueueKernel(cmp, remoteReader(weights, weights_bytes));

            const auto r = machine.run(2'000'000'000ull, auditInterval());
            for (const auto &v : r.violations) {
                std::fprintf(stderr, "audit violation [%s] %s\n",
                             v.check.c_str(), v.detail.c_str());
            }
            fatal_if(!r.violations.empty(), "machine audit failed");
            fatal_if(!r.completed, "bw %.0f mode %s did not drain", bw,
                     mode.name);

            const mgpu::InterGpuFabric &fabric = machine.fabric();
            const StreamStats &cst = dev1.stats().stream(cmp);
            // Local L2 accesses on device 1 plus remote ones are the
            // stream's total L1-miss traffic; the share is the fraction
            // that crossed the fabric.
            const double total = static_cast<double>(cst.l2Accesses) +
                static_cast<double>(cst.remoteAccesses);
            const double share = total > 0.0
                ? 100.0 * static_cast<double>(cst.remoteAccesses) / total
                : 0.0;
            t.addRow({Table::num(bw, 0), mode.name,
                      std::to_string(r.cycles),
                      Table::num(cfg.gpu.cyclesToMs(
                                     dev0.streamFinishCycle(gfx)),
                                 4),
                      std::to_string(fabric.requestsAccepted()),
                      std::to_string(fabric.pageMigrations()),
                      Table::num(share, 1),
                      std::to_string(fabric.bytesTransferred() / 1024)});
        }
    }

    t.emit("fig17_interconnect.csv");
    return 0;
}
