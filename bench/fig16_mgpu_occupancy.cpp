/**
 * @file
 * Fig 16: per-device occupancy timeline for the two-GPU game+inference
 * scenario under the three placements. Split gives each stream its own
 * device (remote weight fetches ride the fabric), colocated folds both
 * onto device 0 under an MPS SM split, and mig additionally partitions
 * the L2 banks. The timeline shows device 1 going dark outside split —
 * the capacity/isolation trade the placement knob buys.
 *
 * Sampling runs through one telemetry sink per device (occ.graphics /
 * occ.compute columns), mirroring how crisp_sim --timeline tags devices.
 */

#include <memory>

#include "bench_util.hpp"
#include "mgpu/multi_gpu.hpp"
#include "scenario/build.hpp"
#include "scenario/scenario.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

const char *
placementName(scenario::Placement p)
{
    switch (p) {
      case scenario::Placement::Split: return "split";
      case scenario::Placement::Colocated: return "colocated";
      default: return "mig";
    }
}

double
sampleOcc(const telemetry::TelemetrySink &sink, const char *col, size_t i)
{
    if (!sink.series().hasColumn(col)) {
        return 0.0;
    }
    const std::vector<double> &v = sink.series().values(col);
    return i < v.size() ? v[i] : 0.0;
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Fig 16", "per-device occupancy, 2-GPU game+inference, three "
                     "placements");

    scenario::Scenario scn;
    scenario::ScenarioError err;
    fatal_if(!scenario::loadScenarioFile(
                 "scenarios/game_inference_mgpu.json", scn, err),
             "%s", err.str().c_str());

    Table t({"placement", "cycle", "gpu0 gfx%", "gpu0 cmp%", "gpu1 gfx%",
             "gpu1 cmp%"});
    const scenario::Placement placements[] = {
        scenario::Placement::Split, scenario::Placement::Colocated,
        scenario::Placement::Mig};
    for (const scenario::Placement p : placements) {
        scn.gpu.placement = p;
        mgpu::MultiGpuConfig cfg;
        cfg.numGpus = scn.gpu.numGpus;
        cfg.gpu = scenario::gpuConfigFor(scn);
        mgpu::MultiGpu machine(cfg);

        std::vector<std::unique_ptr<telemetry::TelemetrySink>> sinks;
        for (uint32_t d = 0; d < cfg.numGpus; ++d) {
            sinks.push_back(std::make_unique<telemetry::TelemetrySink>(
                makeSamplingSink(500)));
            machine.device(d).setTelemetry(sinks.back().get());
        }

        scenario::Materialized mat;
        scenario::submitScenarioMulti(scn, machine, mat);
        const auto r = machine.run(200'000'000ull, auditInterval());
        for (const auto &v : r.violations) {
            std::fprintf(stderr, "audit violation [%s] %s\n",
                         v.check.c_str(), v.detail.c_str());
        }
        fatal_if(!r.violations.empty(), "machine audit failed under %s",
                 placementName(p));
        fatal_if(!r.completed, "placement %s did not drain",
                 placementName(p));

        // The schedule is bursty: long idle gaps separate short active
        // windows. A uniform subsample alone would mostly show zeros, so
        // emit every active sample (bounded by the actual busy time)
        // plus a uniform idle backbone.
        const auto &cycles = sinks[0]->series().cycles();
        const size_t step = std::max<size_t>(1, cycles.size() / 24);
        size_t active_emitted = 0;
        for (size_t i = 0; i < cycles.size(); ++i) {
            const double g0g = sampleOcc(*sinks[0], "occ.graphics", i);
            const double g0c = sampleOcc(*sinks[0], "occ.compute", i);
            const double g1g = sampleOcc(*sinks[1], "occ.graphics", i);
            const double g1c = sampleOcc(*sinks[1], "occ.compute", i);
            const bool active = g0g + g0c + g1g + g1c > 0.0;
            if (!active && i % step != 0) {
                continue;
            }
            if (active && ++active_emitted > 400) {
                continue;   // keep the golden bounded
            }
            t.addRow({placementName(p), std::to_string(cycles[i]),
                      Table::num(100 * g0g, 1), Table::num(100 * g0c, 1),
                      Table::num(100 * g1g, 1),
                      Table::num(100 * g1c, 1)});
        }

        std::printf("%-9s makespan %llu cycles (%.4f ms), fabric %llu "
                    "remote reqs\n",
                    placementName(p),
                    static_cast<unsigned long long>(r.cycles),
                    cfg.gpu.cyclesToMs(r.cycles),
                    static_cast<unsigned long long>(
                        machine.fabric().requestsAccepted()));
    }

    std::printf("\n");
    t.emit("fig16_mgpu_occupancy.csv");
    return 0;
}
