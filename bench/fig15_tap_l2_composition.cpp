/**
 * @file
 * Fig 15: normalized L2 composition under TAP for Sponza PBR + Hologram.
 *
 * HOLO barely touches memory, so TAP allocates nearly all sets (and thus
 * lines) to the rendering stream; pipeline and texture data share the
 * rendering allocation without further partitioning.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 15", "L2 composition under TAP: SPH + HOLO (RTX 3070)");

    telemetry::TelemetrySink sink = makeSamplingSink(2000);
    const PairResult result = runPair(
        "SPH", "HOLO", GpuConfig::rtx3070(), PairScheme::MpsTap, 480, 270,
        [&](Gpu &gpu, StreamId, StreamId) {
            gpu.setTelemetry(&sink);
        });

    Table t({"cycle", "texture%", "pipeline%", "compute%"});
    const auto &series = sink.series();
    const size_t step = std::max<size_t>(1, series.rows() / 20);
    for (size_t i = 0; i < series.rows(); i += step) {
        t.addRow({std::to_string(series.cycles()[i]),
                  Table::num(100 * series.values("l2.comp.texture")[i], 1),
                  Table::num(100 * series.values("l2.comp.pipeline")[i], 1),
                  Table::num(100 * series.values("l2.comp.compute")[i], 1)});
    }
    t.emit("fig15_tap_l2.csv");

    const double tex = seriesMean(series, "l2.comp.texture");
    const double pipe = seriesMean(series, "l2.comp.pipeline");
    const double cmp = seriesMean(series, "l2.comp.compute");
    std::printf("mean shares: texture %.0f%%, pipeline %.0f%%, compute "
                "%.0f%%\n", 100 * tex, 100 * pipe, 100 * cmp);
    std::printf("TAP window decisions traced: %llu\n",
                static_cast<unsigned long long>(
                    sink.count(telemetry::EventKind::TapWindow)));
    std::printf("paper: TAP allocates most cache lines to rendering "
                "because HOLO is compute-bound; pipeline and texture data "
                "are not partitioned from each other.\n");
    std::printf("makespan %llu cycles\n",
                static_cast<unsigned long long>(result.makespan));
    return (tex + pipe) > cmp ? 0 : 1;
}
