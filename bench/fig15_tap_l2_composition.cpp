/**
 * @file
 * Fig 15: normalized L2 composition under TAP for Sponza PBR + Hologram.
 *
 * HOLO barely touches memory, so TAP allocates nearly all sets (and thus
 * lines) to the rendering stream; pipeline and texture data share the
 * rendering allocation without further partitioning.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 15", "L2 composition under TAP: SPH + HOLO (RTX 3070)");

    std::unique_ptr<CompositionSampler> sampler;
    const PairResult result = runPair(
        "SPH", "HOLO", GpuConfig::rtx3070(), PairScheme::MpsTap, 480, 270,
        [&](Gpu &gpu, StreamId, StreamId) {
            sampler = std::make_unique<CompositionSampler>(2000);
            gpu.addController(sampler.get());
        });

    Table t({"cycle", "texture%", "pipeline%", "compute%"});
    const auto &samples = sampler->samples();
    const size_t step = std::max<size_t>(1, samples.size() / 20);
    for (size_t i = 0; i < samples.size(); i += step) {
        const auto &s = samples[i];
        t.addRow({std::to_string(s.cycle), Table::num(100 * s.texture, 1),
                  Table::num(100 * s.pipeline, 1),
                  Table::num(100 * s.compute, 1)});
    }
    std::printf("%s\n", t.toText().c_str());
    t.writeCsv("fig15_tap_l2.csv");

    const double tex =
        sampler->meanOf(&CompositionSampler::Sample::texture);
    const double pipe =
        sampler->meanOf(&CompositionSampler::Sample::pipeline);
    const double cmp =
        sampler->meanOf(&CompositionSampler::Sample::compute);
    std::printf("mean shares: texture %.0f%%, pipeline %.0f%%, compute "
                "%.0f%%\n", 100 * tex, 100 * pipe, 100 * cmp);
    std::printf("paper: TAP allocates most cache lines to rendering "
                "because HOLO is compute-bound; pipeline and texture data "
                "are not partitioned from each other.\n");
    std::printf("makespan %llu cycles\n",
                static_cast<unsigned long long>(result.makespan));
    return (tex + pipe) > cmp ? 0 : 1;
}
