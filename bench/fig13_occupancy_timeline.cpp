/**
 * @file
 * Fig 13: realtime occupancy under Warped-Slicer for the PT + VIO pair
 * (Jetson Orin). The paper shows the dynamic partition favouring the
 * rendering shaders and occupancy dips where the chosen quota is limited
 * by registers rather than thread slots.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 13", "Warped-Slicer realtime occupancy, PT + VIO (Orin)");

    std::unique_ptr<OccupancySampler> sampler;
    const PairResult result = runPair(
        "PT", "VIO", GpuConfig::jetsonOrin(), PairScheme::FgWarpedSlicer,
        480, 270,
        [&](Gpu &gpu, StreamId gfx, StreamId cmp) {
            sampler = std::make_unique<OccupancySampler>(gfx, cmp, 500);
            gpu.addController(sampler.get());
        });

    Table t({"cycle", "graphics occ%", "compute occ%", "total occ%"});
    const auto &samples = sampler->samples();
    const size_t step = std::max<size_t>(1, samples.size() / 40);
    double peak_total = 0.0;
    double gfx_sum = 0.0;
    double cmp_sum = 0.0;
    for (size_t i = 0; i < samples.size(); i += step) {
        const auto &s = samples[i];
        t.addRow({std::to_string(s.cycle), Table::num(100 * s.gfx, 1),
                  Table::num(100 * s.compute, 1),
                  Table::num(100 * (s.gfx + s.compute), 1)});
    }
    for (const auto &s : samples) {
        peak_total = std::max(peak_total, s.gfx + s.compute);
        gfx_sum += s.gfx;
        cmp_sum += s.compute;
    }
    std::printf("%s\n", t.toText().c_str());
    t.writeCsv("fig13_occupancy.csv");

    std::printf("makespan: %llu cycles (graphics done at %llu, compute at "
                "%llu)\n",
                static_cast<unsigned long long>(result.makespan),
                static_cast<unsigned long long>(result.gfxFinish),
                static_cast<unsigned long long>(result.cmpFinish));
    std::printf("mean occupancy: graphics %.1f%%, compute %.1f%% over the "
                "sampled window\n",
                100 * gfx_sum / samples.size(),
                100 * cmp_sum / samples.size());
    std::printf("peak combined occupancy: %.1f%% — dips below 100%% are "
                "register-limited CTA residency (paper: \"the low "
                "occupancy regions are limited by registers\")\n",
                100 * peak_total);
    return samples.empty() ? 1 : 0;
}
