/**
 * @file
 * Fig 13: realtime occupancy under Warped-Slicer for the PT + VIO pair
 * (Jetson Orin). The paper shows the dynamic partition favouring the
 * rendering shaders and occupancy dips where the chosen quota is limited
 * by registers rather than thread slots.
 *
 * Sampling runs through the telemetry subsystem's counter time-series
 * (occ.graphics / occ.compute columns) instead of a bespoke controller.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 13", "Warped-Slicer realtime occupancy, PT + VIO (Orin)");

    telemetry::TelemetrySink sink = makeSamplingSink(500);
    const PairResult result = runPair(
        "PT", "VIO", GpuConfig::jetsonOrin(), PairScheme::FgWarpedSlicer,
        480, 270,
        [&](Gpu &gpu, StreamId, StreamId) {
            gpu.setTelemetry(&sink);
        });

    Table t({"cycle", "graphics occ%", "compute occ%", "total occ%"});
    const auto &cycles = sink.series().cycles();
    const auto &gfx = sink.series().values("occ.graphics");
    const auto &cmp = sink.series().values("occ.compute");
    const size_t step = std::max<size_t>(1, cycles.size() / 40);
    double peak_total = 0.0;
    double gfx_sum = 0.0;
    double cmp_sum = 0.0;
    for (size_t i = 0; i < cycles.size(); i += step) {
        t.addRow({std::to_string(cycles[i]), Table::num(100 * gfx[i], 1),
                  Table::num(100 * cmp[i], 1),
                  Table::num(100 * (gfx[i] + cmp[i]), 1)});
    }
    for (size_t i = 0; i < cycles.size(); ++i) {
        peak_total = std::max(peak_total, gfx[i] + cmp[i]);
        gfx_sum += gfx[i];
        cmp_sum += cmp[i];
    }
    t.emit("fig13_occupancy.csv");

    std::printf("makespan: %llu cycles (graphics done at %llu, compute at "
                "%llu)\n",
                static_cast<unsigned long long>(result.makespan),
                static_cast<unsigned long long>(result.gfxFinish),
                static_cast<unsigned long long>(result.cmpFinish));
    std::printf("mean occupancy: graphics %.1f%%, compute %.1f%% over the "
                "sampled window\n",
                100 * gfx_sum / cycles.size(),
                100 * cmp_sum / cycles.size());
    std::printf("peak combined occupancy: %.1f%% — dips below 100%% are "
                "register-limited CTA residency (paper: \"the low "
                "occupancy regions are limited by registers\")\n",
                100 * peak_total);
    std::printf("repartition decisions traced: %llu\n",
                static_cast<unsigned long long>(
                    sink.count(telemetry::EventKind::Repartition)));
    return cycles.empty() ? 1 : 0;
}
