/**
 * @file
 * Fig 10: histogram of TEX cache lines referenced per CTA in one Sponza
 * drawcall (static trace analysis).
 *
 * The paper finds most CTAs reference 3-5 cache lines, with per-drawcall
 * means ranging from 2.54 to 21.19 across applications.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 10", "TEX cache lines per CTA (static trace analysis)");

    AddressSpace heap;
    const Scene scene = buildSponza(heap, /*pbr=*/false);
    AddressSpace fb_heap(0x4000'0000ull);
    PipelineConfig pc;
    pc.width = k2kWidth;
    pc.height = k2kHeight;
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission sub = pipe.submit(scene);

    // Pick the drawcall with the most fragment CTAs (the paper plots one
    // representative drawcall and reports the spread over the rest).
    size_t best = 0;
    for (size_t i = 0; i < sub.reports.size(); ++i) {
        if (sub.reports[i].fsCtas > sub.reports[best].fsCtas) {
            best = i;
        }
    }
    const DrawcallReport &r = sub.reports[best];
    const Histogram hist =
        texLinesPerCtaHistogram(sub.kernels[r.fsKernelIndex], 63);

    std::printf("drawcall: %s (%llu CTAs)\n\n", r.name.c_str(),
                static_cast<unsigned long long>(r.fsCtas));
    Table t({"tex lines / CTA", "CTA count"});
    for (uint64_t b = hist.minValue(); b <= hist.maxValue() && b <= 40;
         ++b) {
        std::string bar(static_cast<size_t>(
            40.0 * hist.count(b) / std::max<uint64_t>(1,
                hist.count(hist.modeBucket()))), '#');
        t.addRow({std::to_string(b),
                  std::to_string(hist.count(b)) + "  " + bar});
    }
    t.emit("fig10_texlines.csv");
    std::printf("mode: %llu lines, mean: %.2f\n",
                static_cast<unsigned long long>(hist.modeBucket()),
                hist.mean());

    // Spread of means across all drawcalls and scenes (paper: 2.54-21.19).
    double min_mean = 1e30;
    double max_mean = 0.0;
    for (const std::string &name : allSceneNames()) {
        AddressSpace h2;
        const Scene s2 = buildSceneByName(name, h2);
        AddressSpace fbh(0x4000'0000ull);
        RenderPipeline p2(pc, fbh);
        const RenderSubmission sub2 = p2.submit(s2);
        for (const auto &rep : sub2.reports) {
            if (rep.fsKernelIndex == ~0u || rep.fsCtas < 4) {
                continue;
            }
            const Histogram h =
                texLinesPerCtaHistogram(sub2.kernels[rep.fsKernelIndex],
                                        255);
            if (h.totalSamples() > 0 && h.mean() > 0.0) {
                min_mean = std::min(min_mean, h.mean());
                max_mean = std::max(max_mean, h.mean());
            }
        }
    }
    std::printf("per-drawcall means across all scenes: %.2f .. %.2f "
                "(paper: 2.54 .. 21.19)\n", min_mean, max_mean);
    return 0;
}
