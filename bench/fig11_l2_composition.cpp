/**
 * @file
 * Fig 11: L2 composition over time, comparing shading techniques.
 *
 * Pistol (PBR, 8 maps) fills up to ~60% of the L2's resident lines with
 * texture data (44% on average); the Khronos Sponza (basic shading, one
 * texture per drawcall) holds significantly less. The paper also reports
 * L2 hit rates of 90% (Sponza) vs 75% (Pistol).
 */

#include "bench_util.hpp"
#include "workloads/submit.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

struct SceneRun
{
    std::unique_ptr<telemetry::TelemetrySink> sink;
    double l2Hit = 0.0;
    Cycle cycles = 0;
};

SceneRun
runWithSampling(const std::string &name)
{
    AddressSpace heap;
    const Scene scene = buildSceneByName(name, heap);
    AddressSpace fb_heap(0x4000'0000ull);
    PipelineConfig pc;
    pc.width = k2kWidth;
    pc.height = k2kHeight;
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission sub = pipe.submit(scene);

    SceneRun run;
    run.sink = std::make_unique<telemetry::TelemetrySink>(
        makeSamplingSink(2000));
    Gpu gpu(GpuConfig::rtx3070());
    const StreamId gfx = gpu.createStream("graphics");
    submitFrame(gpu, gfx, sub);
    gpu.setTelemetry(run.sink.get());
    const auto r = gpu.run(2'000'000'000ull);
    fatal_if(!r.completed, "run did not complete");
    run.cycles = r.cycles;
    run.l2Hit = gpu.stats().stream(gfx).l2HitRate();
    return run;
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Fig 11", "L2 composition: PBR (Pistol) vs basic (Sponza)");

    const SceneRun pt = runWithSampling("PT");
    const SceneRun spl = runWithSampling("SPL");

    std::printf("(a) Pistol (PBR drawcalls) composition over time:\n");
    Table ta({"cycle", "texture%", "pipeline%", "L2 hit%"});
    const auto &pts = pt.sink->series();
    const size_t step_pt = std::max<size_t>(1, pts.rows() / 12);
    for (size_t i = 0; i < pts.rows(); i += step_pt) {
        ta.addRow({std::to_string(pts.cycles()[i]),
                   Table::num(100 * pts.values("l2.comp.texture")[i], 1),
                   Table::num(100 * pts.values("l2.comp.pipeline")[i], 1),
                   Table::num(100 * pts.values("l2.hitRate")[i], 1)});
    }
    ta.emit("fig11a_pistol.csv");

    std::printf("(b) Sponza (basic shading) composition over time:\n");
    Table tb({"cycle", "texture%", "pipeline%", "L2 hit%"});
    const auto &sps = spl.sink->series();
    const size_t step_spl = std::max<size_t>(1, sps.rows() / 12);
    for (size_t i = 0; i < sps.rows(); i += step_spl) {
        tb.addRow({std::to_string(sps.cycles()[i]),
                   Table::num(100 * sps.values("l2.comp.texture")[i], 1),
                   Table::num(100 * sps.values("l2.comp.pipeline")[i], 1),
                   Table::num(100 * sps.values("l2.hitRate")[i], 1)});
    }
    tb.emit("fig11b_sponza.csv");

    const double pt_avg = seriesMean(pts, "l2.comp.texture");
    const double pt_max = seriesMax(pts, "l2.comp.texture");
    const double spl_avg = seriesMean(sps, "l2.comp.texture");
    std::printf("Pistol texture share: avg %.0f%%, peak %.0f%% "
                "(paper: avg 44%%, up to 60%%)\n",
                100 * pt_avg, 100 * pt_max);
    std::printf("Sponza texture share: avg %.0f%% "
                "(paper: significantly less than Pistol)\n",
                100 * spl_avg);
    std::printf("L2 hit rate: Sponza %.0f%%, Pistol %.0f%% "
                "(paper: 90%% vs 75%%; levels compress at scaled "
                "resolution, see EXPERIMENTS.md)\n",
                100 * spl.l2Hit, 100 * pt.l2Hit);
    return pt_avg > spl_avg ? 0 : 1;
}
