/**
 * @file
 * Google-benchmark microbenchmarks of the memory-system hot paths: tag
 * probes, LRU eviction, set-window remapping, and MSHR merging. These are
 * the most-executed simulator code paths; regressions here dominate
 * simulation wall time.
 *
 * main() additionally asserts the telemetry contract on the hottest path:
 * an L2 submit/step loop with an event sink attached must stay within 10%
 * of the untraced loop.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/stats.hpp"
#include "mem/cache.hpp"
#include "mem/l2_subsystem.hpp"
#include "mem/mshr.hpp"
#include "telemetry/sink.hpp"

namespace crisp
{
namespace
{

void
BM_CacheHit(benchmark::State &state)
{
    SetAssocCache cache({256 * 1024, 16, kLineBytes});
    cache.access(0x1000, false, 0, DataClass::Compute);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(0x1000, false, 0, DataClass::Compute));
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissEvict(benchmark::State &state)
{
    SetAssocCache cache({256 * 1024, 16, kLineBytes});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(a, false, 0, DataClass::Compute));
        a += kLineBytes;
    }
}
BENCHMARK(BM_CacheMissEvict);

void
BM_CacheSetWindowAccess(benchmark::State &state)
{
    SetAssocCache cache({256 * 1024, 16, kLineBytes});
    cache.setStreamSetWindow(1, 0, 8);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(a, false, 1, DataClass::Compute));
        a += kLineBytes;
    }
}
BENCHMARK(BM_CacheSetWindowAccess);

void
BM_MshrAllocateFill(benchmark::State &state)
{
    Mshr mshr(64, 8);
    Addr a = 0;
    for (auto _ : state) {
        mshr.allocate(a, 1);
        benchmark::DoNotOptimize(mshr.fill(a));
        a += kLineBytes;
    }
}
BENCHMARK(BM_MshrAllocateFill);

void
BM_L2SubmitStep(benchmark::State &state)
{
    L2Config cfg;
    cfg.numBanks = 16;
    cfg.bankGeometry = {256 * 1024, 16, kLineBytes};
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    l2.setResponseHandler([](const MemRequest &) {});
    Cycle now = 0;
    Addr a = 0;
    for (auto _ : state) {
        MemRequest req;
        req.line = a;
        req.completionKey = a;
        a += kLineBytes;
        l2.submit(req, now);
        ++now;
        l2.step(now);
    }
}
BENCHMARK(BM_L2SubmitStep);

void
BM_CompositionSnapshot(benchmark::State &state)
{
    SetAssocCache cache({4 * 1024 * 1024 / 16, 16, kLineBytes});
    for (Addr a = 0; a < 2048 * kLineBytes; a += kLineBytes) {
        cache.access(a, false, 0, DataClass::Texture);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.composition());
    }
}
BENCHMARK(BM_CompositionSnapshot);

/**
 * Seconds for @p iters L2 submit/step iterations (the BM_L2SubmitStep
 * loop), optionally with a telemetry sink attached.
 */
double
l2LoopSeconds(size_t iters, telemetry::TelemetrySink *sink)
{
    L2Config cfg;
    cfg.numBanks = 16;
    cfg.bankGeometry = {256 * 1024, 16, kLineBytes};
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    l2.setResponseHandler([](const MemRequest &) {});
    if (sink != nullptr) {
        l2.setTelemetry(sink);
    }
    Cycle now = 0;
    Addr a = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < iters; ++i) {
        MemRequest req;
        req.line = a;
        req.completionKey = a;
        a += kLineBytes;
        l2.submit(req, now);
        ++now;
        l2.step(now);
    }
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Assert that tracing the L2 hot loop costs at most 10% wall clock.
 * Best-of-N timings on interleaved runs to shrug off scheduler noise.
 */
bool
telemetryOverheadOk()
{
    constexpr size_t kIters = 200'000;
    constexpr int kRepeats = 5;
    telemetry::TelemetrySink sink;
    (void)l2LoopSeconds(kIters / 4, nullptr);  // warm up caches/allocator
    double untraced = 1e300;
    double traced = 1e300;
    for (int r = 0; r < kRepeats; ++r) {
        untraced = std::min(untraced, l2LoopSeconds(kIters, nullptr));
        traced = std::min(traced, l2LoopSeconds(kIters, &sink));
    }
    const double ratio = traced / untraced;
    std::printf("telemetry overhead on L2 submit/step: untraced %.3f ms, "
                "traced %.3f ms, ratio %.3fx (budget 1.10x)\n",
                1e3 * untraced, 1e3 * traced, ratio);
    return ratio <= 1.10;
}

} // namespace
} // namespace crisp

int
main(int argc, char **argv)
{
    const bool overhead_ok = crisp::telemetryOverheadOk();
    if (!overhead_ok) {
        std::fprintf(stderr,
                     "FAIL: telemetry overhead exceeds the 10%% budget\n");
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return overhead_ok ? 0 : 1;
}
