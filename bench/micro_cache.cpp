/**
 * @file
 * Google-benchmark microbenchmarks of the memory-system hot paths: tag
 * probes, LRU eviction, set-window remapping, and MSHR merging. These are
 * the most-executed simulator code paths; regressions here dominate
 * simulation wall time.
 */

#include <benchmark/benchmark.h>

#include "common/stats.hpp"
#include "mem/cache.hpp"
#include "mem/l2_subsystem.hpp"
#include "mem/mshr.hpp"

namespace crisp
{
namespace
{

void
BM_CacheHit(benchmark::State &state)
{
    SetAssocCache cache({256 * 1024, 16, kLineBytes});
    cache.access(0x1000, false, 0, DataClass::Compute);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(0x1000, false, 0, DataClass::Compute));
    }
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissEvict(benchmark::State &state)
{
    SetAssocCache cache({256 * 1024, 16, kLineBytes});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(a, false, 0, DataClass::Compute));
        a += kLineBytes;
    }
}
BENCHMARK(BM_CacheMissEvict);

void
BM_CacheSetWindowAccess(benchmark::State &state)
{
    SetAssocCache cache({256 * 1024, 16, kLineBytes});
    cache.setStreamSetWindow(1, 0, 8);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(a, false, 1, DataClass::Compute));
        a += kLineBytes;
    }
}
BENCHMARK(BM_CacheSetWindowAccess);

void
BM_MshrAllocateFill(benchmark::State &state)
{
    Mshr mshr(64, 8);
    Addr a = 0;
    for (auto _ : state) {
        mshr.allocate(a, 1);
        benchmark::DoNotOptimize(mshr.fill(a));
        a += kLineBytes;
    }
}
BENCHMARK(BM_MshrAllocateFill);

void
BM_L2SubmitStep(benchmark::State &state)
{
    L2Config cfg;
    cfg.numBanks = 16;
    cfg.bankGeometry = {256 * 1024, 16, kLineBytes};
    StatsRegistry stats;
    L2Subsystem l2(cfg, &stats);
    l2.setResponseHandler([](const MemRequest &) {});
    Cycle now = 0;
    Addr a = 0;
    for (auto _ : state) {
        MemRequest req;
        req.line = a;
        req.completionKey = a;
        a += kLineBytes;
        l2.submit(req, now);
        ++now;
        l2.step(now);
    }
}
BENCHMARK(BM_L2SubmitStep);

void
BM_CompositionSnapshot(benchmark::State &state)
{
    SetAssocCache cache({4 * 1024 * 1024 / 16, 16, kLineBytes});
    for (Addr a = 0; a < 2048 * kLineBytes; a += kLineBytes) {
        cache.access(a, false, 0, DataClass::Texture);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.composition());
    }
}
BENCHMARK(BM_CompositionSnapshot);

} // namespace
} // namespace crisp

BENCHMARK_MAIN();
