/**
 * @file
 * Fig 6 side observation: the SPL anomaly.
 *
 * The paper reports that the Khronos Sponza frame runs ~2x FASTER on the
 * Jetson Orin (0.7 ms) than on the much larger RTX 3070 (1.5 ms) and
 * suspects the PCI-E bus: the discrete GPU pays a host-submission cost
 * per drawcall that an integrated GPU (shared memory space, no transfer)
 * does not, and a frame of many small drawcalls is dominated by it.
 *
 * This harness tests that hypothesis in the model: end-to-end frame time
 * = GPU execution + draws x per-draw submission cost, with a PCIe-class
 * cost for the discrete card and a near-zero cost for the integrated one.
 * The anomaly reproduces exactly where the paper sees it — on the
 * cheap-shader, many-drawcall SPL — while the GPU-bound SPH stays faster
 * on the big card.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

/** Host submission cost per drawcall, in microseconds. */
constexpr double kPcieSubmitUs = 14.0;      // discrete: PCI-E round trip
constexpr double kIntegratedSubmitUs = 1.5; // shared memory space

} // namespace

int
main()
{
    setVerbose(false);
    header("Fig 6 (SPL anomaly)",
           "integrated vs discrete end-to-end frame time");

    // GPU cycles are measured at 1/16-scale pixels; scale the GPU-side
    // time back to full resolution (x16) so the submission cost is
    // weighed against the frame the paper timed.
    constexpr double kPixelScale = 16.0;

    Table t({"scene", "gpu", "GPU ms (est. full res)", "submit ms",
             "end-to-end ms"});
    std::map<std::string, std::map<std::string, double>> total;
    std::map<std::string, std::map<std::string, double>> gpu_only;
    for (const char *name : {"SPL", "SPH"}) {
        AddressSpace heap;
        const Scene scene = buildSceneByName(name, heap);
        for (const bool integrated : {false, true}) {
            const GpuConfig cfg = integrated ? GpuConfig::jetsonOrin()
                                             : GpuConfig::rtx3070();
            const FrameResult frame =
                runFrame(scene, k2kWidth, k2kHeight, cfg);
            const double gpu_ms = frame.simMs * kPixelScale;
            const double submit_ms =
                scene.draws.size() *
                (integrated ? kIntegratedSubmitUs : kPcieSubmitUs) / 1000.0;
            const double end_to_end = gpu_ms + submit_ms;
            total[name][cfg.name] = end_to_end;
            gpu_only[name][cfg.name] = gpu_ms;
            t.addRow({name, cfg.name, Table::num(gpu_ms, 3),
                      Table::num(submit_ms, 3),
                      Table::num(end_to_end, 3)});
        }
    }
    t.emit("fig6b_pcie.csv");

    const bool spl_anomaly =
        total["SPL"]["Jetson Orin"] < total["SPL"]["RTX 3070"];
    const bool gpu_side_normal =
        gpu_only["SPL"]["RTX 3070"] < gpu_only["SPL"]["Jetson Orin"] &&
        gpu_only["SPH"]["RTX 3070"] < gpu_only["SPH"]["Jetson Orin"];
    std::printf("SPL end-to-end faster on the small integrated GPU: %s "
                "(paper: 0.7 ms Orin vs 1.5 ms RTX 3070, ~2x)\n",
                spl_anomaly ? "YES" : "no");
    std::printf("  measured ratio: %.1fx\n",
                total["SPL"]["RTX 3070"] / total["SPL"]["Jetson Orin"]);
    std::printf("GPU-side time alone still favours the RTX 3070: %s — "
                "the anomaly is entirely host-submission-side.\n",
                gpu_side_normal ? "YES" : "no");
    std::printf("the model supports the paper's suspicion: a frame of "
                "many cheap drawcalls is bound by per-draw host "
                "submission over PCI-E, not by GPU throughput.\n");
    return spl_anomaly && gpu_side_normal ? 0 : 1;
}
