/**
 * @file
 * Google-benchmark microbenchmarks of the graphics frontend hot paths:
 * triangle rasterization, vertex batching and texture footprint
 * generation. Together with the cache paths these bound functional-frame
 * throughput.
 */

#include <benchmark/benchmark.h>

#include "graphics/batching.hpp"
#include "graphics/framebuffer.hpp"
#include "graphics/mesh.hpp"
#include "graphics/raster.hpp"
#include "graphics/sampler.hpp"

namespace crisp
{
namespace
{

void
BM_RasterizeTriangle(benchmark::State &state)
{
    AddressSpace heap;
    Framebuffer fb(256, 256, heap);
    const Vec4 clip[3] = {{-0.8f, -0.8f, 0.5f, 1.0f},
                          {0.0f, 0.8f, 0.5f, 1.0f},
                          {0.8f, -0.8f, 0.5f, 1.0f}};
    const Vec2 uv[3] = {{0, 0}, {0.5f, 1}, {1, 0}};
    for (auto _ : state) {
        Rasterizer rast(fb);
        rast.submit(clip, uv, 0, 0);
        benchmark::DoNotOptimize(rast.takeBins());
        fb.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RasterizeTriangle);

void
BM_VertexBatching(benchmark::State &state)
{
    AddressSpace heap;
    const Mesh mesh = Mesh::makeSphere("s", 32, 48, 1.0f, heap);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            buildVertexBatches(mesh.indices(), kDefaultVertexBatchSize));
    }
    state.SetItemsProcessed(state.iterations() *
                            mesh.indices().size());
}
BENCHMARK(BM_VertexBatching);

void
BM_SamplerFootprint(benchmark::State &state)
{
    AddressSpace heap;
    const Texture2D tex("t", 512, 512, TexFormat::RGBA8, heap);
    std::vector<Addr> fp;
    float u = 0.1f;
    for (auto _ : state) {
        fp.clear();
        u = u < 0.9f ? u + 0.013f : 0.1f;
        Sampler::footprint(tex, {u, 1.0f - u}, 2.3f, 0,
                           TexFilter::Bilinear, fp);
        benchmark::DoNotOptimize(fp);
    }
}
BENCHMARK(BM_SamplerFootprint);

void
BM_MipChainBuild(benchmark::State &state)
{
    for (auto _ : state) {
        AddressSpace heap;
        Texture2D tex("t", 256, 256, TexFormat::RGBA8, heap);
        benchmark::DoNotOptimize(tex.numLevels());
    }
}
BENCHMARK(BM_MipChainBuild);

} // namespace
} // namespace crisp

BENCHMARK_MAIN();
