/**
 * @file
 * Fig 6: frame-time correlation between CRISP and the RTX 3070.
 *
 * Every evaluation scene is sampled at the scaled 2K and 4K resolutions;
 * simulated frame cycles (converted to ms) are correlated against the
 * hardware oracle's measured frame times. The paper reports 94.8%
 * correlation, a consistent sim-slower-than-hw bias, and that the
 * vertex-bound IT scene slows only ~20% from 2K to 4K despite 4x pixels.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 6", "frame time correlation vs RTX 3070 oracle");
    const GpuConfig gpu_cfg = GpuConfig::rtx3070();
    const HardwareOracle oracle;

    Table t({"scene", "res", "sim ms", "hw ms", "sim/hw"});
    std::vector<double> sim_series;
    std::vector<double> hw_series;
    uint32_t sim_slower = 0;
    uint32_t rows = 0;
    std::map<std::string, std::pair<double, double>> by_scene_2k_4k;

    for (const std::string &name : allSceneNames()) {
        AddressSpace heap;
        const Scene scene = buildSceneByName(name, heap);
        for (const bool is4k : {false, true}) {
            const uint32_t w = is4k ? k4kWidth : k2kWidth;
            const uint32_t h = is4k ? k4kHeight : k2kHeight;
            const FrameResult frame = runFrame(scene, w, h, gpu_cfg);
            const double hw_ms =
                oracle.frameTimeMs(frame.submission, gpu_cfg);
            sim_series.push_back(frame.simMs);
            hw_series.push_back(hw_ms);
            sim_slower += frame.simMs > hw_ms;
            ++rows;
            if (is4k) {
                by_scene_2k_4k[name].second = frame.simMs;
            } else {
                by_scene_2k_4k[name].first = frame.simMs;
            }
            t.addRow({name, is4k ? "4K(scaled)" : "2K(scaled)",
                      Table::num(frame.simMs, 4), Table::num(hw_ms, 4),
                      Table::num(frame.simMs / hw_ms, 2)});
        }
    }
    t.emit("fig6_frametime.csv");

    const double corr = pearson(hw_series, sim_series);
    std::printf("correlation: %.1f%%   (paper: 94.8%%)\n", 100.0 * corr);
    std::printf("sim slower than hw in %u/%u samples "
                "(paper: simulated frame time always longer)\n",
                sim_slower, rows);

    const auto &it = by_scene_2k_4k["IT"];
    std::printf("IT 2K->4K slowdown: %.0f%% (paper: ~20%%, vertex-bound)\n",
                100.0 * (it.second / it.first - 1.0));
    const auto &sph = by_scene_2k_4k["SPH"];
    std::printf("SPH 2K->4K slowdown: %.0f%% (fragment-bound scenes scale "
                "with pixels)\n",
                100.0 * (sph.second / sph.first - 1.0));
    return corr > 0.85 ? 0 : 1;
}
