/**
 * @file
 * Ablations of the graphics-frontend design choices DESIGN.md calls out:
 *
 *  1. Vertex batching: the paper argues (§I) that wrong baselines — like
 *     Teapot's global vertex cache — hide optimization opportunities.
 *     Sweeping the batch capacity shows how invocation counts and frame
 *     time respond, and why 96 matters.
 *  2. Drawcall overlap: ITR keeps several draws in flight; serializing
 *     kernels at drawcall boundaries (what a naive stream does) costs a
 *     large fraction of frame time.
 *  3. Mipmapped texturing: beyond the Fig 9 counter accuracy, LoD also
 *     changes simulated frame time through L1/L2 pressure.
 */

#include "bench_util.hpp"
#include "workloads/submit.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

Cycle
timeFrame(const Scene &scene, const PipelineConfig &pc,
          bool overlap_draws)
{
    AddressSpace fb_heap(0x4000'0000ull);
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission sub = pipe.submit(scene);
    Gpu gpu(GpuConfig::rtx3070());
    const StreamId gfx = gpu.createStream("graphics");
    if (overlap_draws) {
        submitFrame(gpu, gfx, sub);
    } else {
        for (const KernelInfo &k : sub.kernels) {
            gpu.enqueueKernel(gfx, k);  // strict in-order stream
        }
    }
    const auto r = gpu.run(2'000'000'000ull);
    fatal_if(!r.completed, "frame did not drain");
    return r.cycles;
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Ablations", "graphics frontend design choices");

    AddressSpace heap;
    const Scene scene = buildSponza(heap, /*pbr=*/false);
    PipelineConfig pc;
    pc.width = k2kWidth;
    pc.height = k2kHeight;

    // --- 1. Vertex batch capacity --------------------------------------
    std::printf("1) vertex batching (SPL):\n");
    Table t1({"batch size", "VS invocations", "frame cycles",
              "vs batch=96"});
    Cycle base96 = 0;
    for (uint32_t batch : {3u, 32u, 96u, 1024u}) {
        PipelineConfig cfg = pc;
        cfg.batchSize = batch;
        AddressSpace fb_heap(0x4000'0000ull);
        RenderPipeline pipe(cfg, fb_heap);
        const RenderSubmission sub = pipe.submit(scene);
        const Cycle cycles = timeFrame(scene, cfg, true);
        if (batch == 96) {
            base96 = cycles;
        }
        t1.addRow({batch == 3 ? "3 (no dedup)"
                              : batch == 1024 ? "1024 (~global cache)"
                                              : std::to_string(batch),
                   std::to_string(sub.totalVsInvocations()),
                   std::to_string(cycles),
                   base96 ? Table::num(static_cast<double>(cycles) /
                                           base96, 2)
                          : "-"});
    }
    t1.emit("ablation_batching.csv");
    std::printf("a no-dedup distributor inflates vertex work; a global "
                "vertex cache (Teapot-style) underestimates it — the "
                "batch model sits between, matching hardware (Fig 3).\n\n");

    // --- 2. Drawcall overlap --------------------------------------------
    std::printf("2) drawcall overlap (ITR pipelining):\n");
    Table t2({"scene", "serial kernels", "overlapped", "speedup"});
    for (const char *name : {"SPL", "SPH", "IT"}) {
        AddressSpace h2;
        const Scene s2 = buildSceneByName(name, h2);
        const Cycle serial = timeFrame(s2, pc, false);
        const Cycle overlap = timeFrame(s2, pc, true);
        t2.addRow({name, std::to_string(serial),
                   std::to_string(overlap),
                   Table::num(static_cast<double>(serial) / overlap, 2)});
    }
    t2.emit("ablation_overlap.csv");
    std::printf("serializing at drawcall boundaries drains the machine "
                "between kernels; ITR-style overlap recovers the bubbles."
                "\n\n");

    // --- 3. Mipmapping's timing impact ----------------------------------
    std::printf("3) mipmapped texturing (LoD):\n");
    Table t3({"scene", "LoD on cycles", "LoD off cycles", "off/on"});
    for (const char *name : {"SPL", "PT"}) {
        AddressSpace h3;
        const Scene s3 = buildSceneByName(name, h3);
        PipelineConfig off = pc;
        off.lodEnabled = false;
        const Cycle on_c = timeFrame(s3, pc, true);
        const Cycle off_c = timeFrame(s3, off, true);
        t3.addRow({name, std::to_string(on_c), std::to_string(off_c),
                   Table::num(static_cast<double>(off_c) / on_c, 2)});
    }
    t3.emit("ablation_lod.csv");
    std::printf("without LoD the texture units fetch level-0 footprints: "
                "more lines per access, more L1 misses, slower frames — "
                "the timing-side counterpart of Fig 9.\n");
    return 0;
}
