/**
 * @file
 * Table I: simulator capability matrix.
 *
 * The table's claim for CRISP — the only simulator running raster rendering
 * AND general compute, concurrently — is demonstrated rather than merely
 * printed: three smoke simulations run a rendering-only frame, a
 * compute-only kernel batch, and a concurrent mix, and the table row is
 * emitted only after all three complete on the same timing model.
 */

#include "bench_util.hpp"
#include "workloads/submit.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Table I", "simulator capability comparison");

    // 1. Rendering-only.
    AddressSpace heap;
    Scene scene = buildPistol(heap);
    const FrameResult frame =
        runFrame(scene, 320, 180, GpuConfig::jetsonOrin());
    const bool rendering_ok = frame.stats.kernelsCompleted > 0 &&
                              frame.stats.l1TexAccesses > 0;

    // 2. Compute-only (CUDA-style trace kernels).
    AddressSpace cheap;
    Gpu compute_gpu(GpuConfig::jetsonOrin());
    const StreamId cs = compute_gpu.createStream("compute");
    for (const KernelInfo &k : buildVio(cheap)) {
        compute_gpu.enqueueKernel(cs, k);
    }
    const bool compute_ok = compute_gpu.run(500'000'000ull).completed;

    // 3. Concurrent rendering + compute with intra-SM sharing.
    AddressSpace heap2(0x8000'0000ull);
    Gpu both(GpuConfig::jetsonOrin());
    const StreamId gs = both.createStream("graphics");
    const StreamId ks = both.createStream("compute");
    PipelineConfig pc;
    pc.width = 320;
    pc.height = 180;
    RenderPipeline pipe(pc, heap2);
    const RenderSubmission sub = pipe.submit(scene);
    submitFrame(both, gs, sub);
    for (const KernelInfo &k : buildHolo(heap2, 1)) {
        both.enqueueKernel(ks, k);
    }
    PartitionConfig part;
    part.policy = PartitionPolicy::FineGrained;
    both.setPartition(part);
    const bool concurrent_ok = both.run(500'000'000ull).completed &&
                               both.stats().stream(gs).instructions > 0 &&
                               both.stats().stream(ks).instructions > 0;

    Table t({"Simulator", "Rendering Pipeline", "Shader Model",
             "GPGPU model", "Workloads"});
    t.addRow({"Attila", "Yes", "Unified", "No", "Rendering"});
    t.addRow({"Teapot", "Yes", "non-Unified", "No", "Rendering"});
    t.addRow({"GLTraceSim", "Yes", "Approximated", "No", "Rendering"});
    t.addRow({"Emerald", "Yes", "Unified", "No", "Rendering"});
    t.addRow({"Skybox", "Yes", "Unified", "No", "Rendering"});
    t.addRow({"Vulkan-Sim", "Ray-Tracing only", "Ray Tracing", "No",
              "Ray Tracing"});
    t.addRow({"GPGPU-Sim", "No", "N/A", "Yes", "CUDA"});
    t.addRow({"Accel-Sim", "No", "N/A", "Yes", "CUDA"});
    t.addRow({"CRISP (this repo)",
              rendering_ok ? "Yes (verified)" : "FAILED",
              "Unified",
              compute_ok ? "Yes (verified)" : "FAILED",
              concurrent_ok ? "Rendering + CUDA (verified)" : "FAILED"});
    std::printf("%s\n", t.toText().c_str());

    std::printf("rendering-only:    %s (%llu graphics kernels)\n",
                rendering_ok ? "ok" : "FAILED",
                static_cast<unsigned long long>(
                    frame.stats.kernelsCompleted));
    std::printf("compute-only:      %s\n", compute_ok ? "ok" : "FAILED");
    std::printf("concurrent mix:    %s\n",
                concurrent_ok ? "ok" : "FAILED");
    return rendering_ok && compute_ok && concurrent_ok ? 0 : 1;
}
