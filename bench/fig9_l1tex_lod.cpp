/**
 * @file
 * Fig 9: L1 texture accesses with LoD on vs off, against the hardware
 * oracle's texture-unit counters.
 *
 * With mipmapping enabled, texture requests collide onto shared texels and
 * merge; with LoD off, every request references level 0 and access counts
 * explode (the paper reports per-drawcall errors of up to 6x and a MAPE
 * reduction from 219% to 33%, i.e. 6.6x).
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

/** Simulator L1 texture access count: distinct lines per TEX instruction
 * (the coalescer's output stream into the unified L1). */
double
simTexAccesses(const KernelInfo &fs_kernel)
{
    uint64_t accesses = 0;
    for (uint32_t c = 0; c < fs_kernel.numCtas(); ++c) {
        const CtaTrace cta = fs_kernel.source->generate(c);
        for (const auto &w : cta.warps) {
            for (const auto &in : w.instrs) {
                if (in.opcode == Opcode::TEX) {
                    accesses += coalesceToLines(in).size();
                }
            }
        }
    }
    return static_cast<double>(accesses);
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Fig 9", "L1 texture accesses: LoD on vs LoD off");
    const HardwareOracle oracle;

    std::vector<double> hw;
    std::vector<double> sim_on;
    std::vector<double> sim_off;
    Table t({"drawcall", "hw", "sim LoD on", "sim LoD off", "off/hw"});

    uint32_t salt = 0;
    for (const std::string &name : {"SPL", "SPH", "PT", "PL"}) {
        AddressSpace heap;
        const Scene scene = buildSceneByName(name, heap);

        AddressSpace fb_heap_on(0x4000'0000ull);
        PipelineConfig pc_on;
        pc_on.width = k2kWidth;
        pc_on.height = k2kHeight;
        RenderPipeline pipe_on(pc_on, fb_heap_on);
        const RenderSubmission sub_on = pipe_on.submit(scene);

        AddressSpace fb_heap_off(0x4000'0000ull);
        PipelineConfig pc_off = pc_on;
        pc_off.lodEnabled = false;
        RenderPipeline pipe_off(pc_off, fb_heap_off);
        const RenderSubmission sub_off = pipe_off.submit(scene);

        for (size_t d = 0; d < sub_on.reports.size(); ++d) {
            const DrawcallReport &r_on = sub_on.reports[d];
            const DrawcallReport &r_off = sub_off.reports[d];
            if (r_on.fsKernelIndex == ~0u || r_off.fsKernelIndex == ~0u) {
                continue;
            }
            ++salt;
            const double h = oracle.l1TexAccesses(
                sub_on.kernels[r_on.fsKernelIndex], salt);
            if (h <= 0.0) {
                continue;
            }
            const double on =
                simTexAccesses(sub_on.kernels[r_on.fsKernelIndex]);
            const double off =
                simTexAccesses(sub_off.kernels[r_off.fsKernelIndex]);
            hw.push_back(h);
            sim_on.push_back(on);
            sim_off.push_back(off);
            if (t.rows() < 20) {
                t.addRow({name + "/" + r_on.name, Table::num(h, 0),
                          Table::num(on, 0), Table::num(off, 0),
                          Table::num(off / h, 2)});
            }
        }
    }
    std::printf("%s... (%zu drawcalls total)\n\n", t.toText().c_str(),
                hw.size());
    t.writeCsv("fig9_l1tex.csv");

    size_t skipped_on = 0;
    size_t skipped_off = 0;
    const double mape_on = mape(hw, sim_on, &skipped_on);
    const double mape_off = mape(hw, sim_off, &skipped_off);
    std::printf("MAPE with LoD on:  %6.1f%%   (paper: 33%%)\n", mape_on);
    std::printf("MAPE with LoD off: %6.1f%%   (paper: 219%%)\n", mape_off);
    if (skipped_on != 0 || skipped_off != 0) {
        std::printf("(skipped %zu zero-reference drawcalls of %zu)\n",
                    std::max(skipped_on, skipped_off), hw.size());
    }
    std::printf("LoD reduces MAPE by %.1fx (paper: 6.6x)\n",
                mape_off / std::max(1e-9, mape_on));

    double worst = 0.0;
    for (size_t i = 0; i < hw.size(); ++i) {
        worst = std::max(worst, sim_off[i] / hw[i]);
    }
    std::printf("worst per-drawcall LoD-off overestimate: %.1fx "
                "(paper: up to 6x)\n", worst);
    return mape_off > 2.0 * mape_on ? 0 : 1;
}
