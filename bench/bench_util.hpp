#ifndef CRISP_BENCH_BENCH_UTIL_HPP
#define CRISP_BENCH_BENCH_UTIL_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "gpu/gpu.hpp"
#include "graphics/pipeline.hpp"
#include "partition/tap.hpp"
#include "partition/warped_slicer.hpp"
#include "telemetry/sink.hpp"
#include "traceio/cache.hpp"
#include "workloads/cached.hpp"
#include "workloads/compute.hpp"
#include "workloads/oracle.hpp"
#include "workloads/scenes.hpp"
#include "workloads/submit.hpp"

namespace crisp::bench
{

/**
 * Resolution scaling.
 *
 * The paper samples every application at 2K (2560x1440) and 4K (3840x2160).
 * Simulating full frames is infeasible in this environment (the paper's own
 * artifact drops to 480p for tracing), so every benchmark renders at 1/4
 * scale per axis (1/16 the pixels) and says so in its output. Relative
 * behaviour — who wins, scaling between resolutions, composition shares —
 * is what the figures compare and is preserved.
 */
inline constexpr uint32_t k2kWidth = 640;
inline constexpr uint32_t k2kHeight = 360;
inline constexpr uint32_t k4kWidth = 960;
inline constexpr uint32_t k4kHeight = 540;

/** Print a standard header naming the experiment and its scaling. */
inline void
header(const char *figure, const char *what)
{
    std::printf("=== %s: %s ===\n", figure, what);
    std::printf("(resolutions scaled 1/4 per axis vs the paper; "
                "see EXPERIMENTS.md)\n\n");
}

/**
 * Counter-audit cadence for bench runs: every figure/table run carries
 * the crisp::audit conservation identities so a future accounting bug
 * fails the bench (and the golden CI job) instead of silently skewing a
 * CSV. CRISP_AUDIT_INTERVAL overrides the default cadence; 0 disables.
 */
inline Cycle
auditInterval()
{
    if (const char *env = std::getenv("CRISP_AUDIT_INTERVAL")) {
        return static_cast<Cycle>(std::strtoull(env, nullptr, 10));
    }
    return 4096;
}

/** Run to completion with the counter audit attached (benches only). */
inline Gpu::RunResult
runAudited(Gpu &gpu, Cycle max_cycles)
{
    integrity::RunOptions opts;
    opts.auditInterval = auditInterval();
    Gpu::RunResult r = gpu.run(max_cycles, opts);
    if (r.hang) {
        fatal("counter audit failed:\n%s", r.hang->render().c_str());
    }
    return r;
}

/** Result of a graphics-only frame on the timing model. */
struct FrameResult
{
    RenderSubmission submission;
    Cycle cycles = 0;
    StreamStats stats;
    double simMs = 0.0;
};

/**
 * Render @p scene functionally at the given resolution, then replay the
 * frame's kernels on a fresh GPU of the given config.
 */
inline FrameResult
runFrame(const Scene &scene, uint32_t width, uint32_t height,
         const GpuConfig &gpu_cfg, bool lod_enabled = true)
{
    AddressSpace heap;
    (void)heap;  // scene resources were allocated by the caller's heap
    PipelineConfig pc;
    pc.width = width;
    pc.height = height;
    pc.lodEnabled = lod_enabled;
    // NOTE: the pipeline needs its own framebuffer allocation; reuse a
    // local heap placed far above scene allocations to avoid overlap.
    AddressSpace fb_heap(0x4000'0000ull);
    RenderPipeline pipe(pc, fb_heap);

    FrameResult out;
    out.submission = pipe.submit(scene);

    Gpu gpu(gpu_cfg);
    const StreamId gfx = gpu.createStream("graphics");
    submitFrame(gpu, gfx, out.submission);
    const auto run = runAudited(gpu, 2'000'000'000ull);
    fatal_if(!run.completed, "frame simulation did not drain");
    out.cycles = run.cycles;
    out.stats = gpu.stats().stream(gfx);
    out.simMs = gpu_cfg.cyclesToMs(run.cycles);
    return out;
}

/**
 * Build a telemetry sink configured for bench-style counter sampling.
 * Attach with gpu.setTelemetry(&sink); read sink.series() afterwards.
 */
inline telemetry::TelemetrySink
makeSamplingSink(Cycle sample_interval)
{
    telemetry::TelemetryConfig tc;
    tc.sampleInterval = sample_interval;
    return telemetry::TelemetrySink(tc);
}

/** Mean of one counter-series column. */
inline double
seriesMean(const telemetry::CounterSeries &series, const std::string &col)
{
    const std::vector<double> &v = series.values(col);
    if (v.empty()) {
        return 0.0;
    }
    double total = 0.0;
    for (double x : v) {
        total += x;
    }
    return total / static_cast<double>(v.size());
}

/** Max of one counter-series column. */
inline double
seriesMax(const telemetry::CounterSeries &series, const std::string &col)
{
    double best = 0.0;
    for (double x : series.values(col)) {
        best = std::max(best, x);
    }
    return best;
}

/**
 * The bench-wide trace cache. Off unless CRISP_TRACE_CACHE names a
 * directory, in which case every compute workload a bench builds is
 * packed on first use and replayed bit-for-bit afterwards (goldens are
 * unchanged either way — replay is byte-identical to generation).
 */
inline traceio::TraceCache &
traceCache()
{
    static traceio::TraceCache cache = traceio::TraceCache::fromEnv();
    return cache;
}

/** Named builder for the three compute workloads of §V-B. */
inline std::vector<KernelInfo>
buildComputeByName(const std::string &name, AddressSpace &heap)
{
    if (name == "VIO") {
        return buildVioCached(traceCache(), heap, /*frames=*/2);
    }
    if (name == "HOLO") {
        return buildHoloCached(traceCache(), heap);
    }
    if (name == "NN") {
        return buildNnCached(traceCache(), heap, /*layers=*/4);
    }
    fatal("unknown compute workload %s", name.c_str());
}

/** Partitioning scheme for a rendering+compute pair run. */
enum class PairScheme
{
    MpsEven,          ///< Inter-SM split, shared L2 (baseline).
    MigEven,          ///< Inter-SM split + bank-partitioned L2.
    FgEven,           ///< Intra-SM static even quotas ("EVEN").
    FgWarpedSlicer,   ///< Intra-SM with Warped-Slicer dynamic quotas.
    MpsTap,           ///< MPS + TAP set-partitioned L2.
};

inline const char *
pairSchemeName(PairScheme s)
{
    switch (s) {
      case PairScheme::MpsEven: return "MPS";
      case PairScheme::MigEven: return "MiG";
      case PairScheme::FgEven: return "EVEN";
      case PairScheme::FgWarpedSlicer: return "Dynamic";
      case PairScheme::MpsTap: return "TAP";
      default: return "?";
    }
}

/** Outcome of one concurrent rendering+compute run. */
struct PairResult
{
    Cycle makespan = 0;
    Cycle gfxFinish = 0;
    Cycle cmpFinish = 0;
    StreamStats gfx;
    StreamStats cmp;
};

/** Cycles for a compute workload running alone on the whole GPU. */
inline Cycle
runComputeAlone(const std::string &compute_name, const GpuConfig &gpu_cfg)
{
    AddressSpace cheap(0x8000'0000ull);
    Gpu gpu(gpu_cfg);
    const StreamId s = gpu.createStream("compute");
    for (const KernelInfo &k : buildComputeByName(compute_name, cheap)) {
        gpu.enqueueKernel(s, k);
    }
    const auto r = runAudited(gpu, 4'000'000'000ull);
    fatal_if(!r.completed, "compute-alone run did not drain");
    return r.cycles;
}

/** Cycles for a rendering frame running alone on the whole GPU. */
inline Cycle
runGraphicsAlone(const std::string &scene_name, const GpuConfig &gpu_cfg,
                 uint32_t width, uint32_t height)
{
    AddressSpace heap;
    const Scene scene = buildSceneByName(scene_name, heap);
    return runFrame(scene, width, height, gpu_cfg).cycles;
}

/**
 * Run one rendering scene concurrently with one compute workload under a
 * partitioning scheme and return the makespan and per-stream stats.
 * Optional controllers (samplers) are attached before the run.
 */
inline PairResult
runPair(const std::string &scene_name, const std::string &compute_name,
        const GpuConfig &gpu_cfg, PairScheme scheme, uint32_t width,
        uint32_t height,
        const std::function<void(Gpu &, StreamId, StreamId)> &attach = {})
{
    AddressSpace heap;
    const Scene scene = buildSceneByName(scene_name, heap);
    AddressSpace fb_heap(0x4000'0000ull);
    PipelineConfig pc;
    pc.width = width;
    pc.height = height;
    RenderPipeline pipe(pc, fb_heap);
    const RenderSubmission sub = pipe.submit(scene);

    AddressSpace cheap(0x8000'0000ull);
    const std::vector<KernelInfo> compute =
        buildComputeByName(compute_name, cheap);

    Gpu gpu(gpu_cfg);
    const StreamId gfx = gpu.createStream("graphics");
    const StreamId cmp = gpu.createStream("compute");
    submitFrame(gpu, gfx, sub);
    for (const KernelInfo &k : compute) {
        gpu.enqueueKernel(cmp, k);
    }

    PartitionConfig part;
    switch (scheme) {
      case PairScheme::MpsEven:
      case PairScheme::MpsTap:
        part.policy = PartitionPolicy::Mps;
        break;
      case PairScheme::MigEven:
        part.policy = PartitionPolicy::Mig;
        break;
      case PairScheme::FgEven:
      case PairScheme::FgWarpedSlicer:
        part.policy = PartitionPolicy::FineGrained;
        part.priorityStream = gfx;
        break;
    }
    gpu.setPartition(part);

    std::unique_ptr<WarpedSlicer> slicer;
    if (scheme == PairScheme::FgWarpedSlicer) {
        WarpedSlicerConfig wc;
        wc.streamA = gfx;
        wc.streamB = cmp;
        slicer = std::make_unique<WarpedSlicer>(wc);
        gpu.addController(slicer.get());
    }
    std::unique_ptr<TapController> tap;
    if (scheme == PairScheme::MpsTap) {
        TapConfig tc;
        tc.gfxStream = gfx;
        tc.computeStream = cmp;
        tap = std::make_unique<TapController>(tc, gpu);
        gpu.addController(tap.get());
    }
    if (attach) {
        attach(gpu, gfx, cmp);
    }

    const auto r = runAudited(gpu, 4'000'000'000ull);
    fatal_if(!r.completed, "pair %s+%s under %s did not drain",
             scene_name.c_str(), compute_name.c_str(),
             pairSchemeName(scheme));
    PairResult out;
    out.makespan = r.cycles;
    out.gfxFinish = gpu.streamFinishCycle(gfx);
    out.cmpFinish = gpu.streamFinishCycle(cmp);
    out.gfx = gpu.stats().stream(gfx);
    out.cmp = gpu.stats().stream(cmp);
    return out;
}

} // namespace crisp::bench

#endif // CRISP_BENCH_BENCH_UTIL_HPP
