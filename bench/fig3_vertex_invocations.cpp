/**
 * @file
 * Fig 3: vertex shader invocations, simulator vs hardware profiler.
 *
 * The simulator reports VS threads as warps x 32 while the profiler
 * reports exact invocation counts; the paper correlates the two per
 * drawcall across all workloads and finds batch size 96 gives the highest
 * correlation (Kerbl et al. report the same value). This harness:
 *   1. prints the per-drawcall (hw, sim) series at batch = 96, and
 *   2. sweeps the batch size to show the correlation peaks at 96.
 */

#include <map>
#include <memory>

#include "bench_util.hpp"
#include "graphics/batching.hpp"

using namespace crisp;
using namespace crisp::bench;

namespace
{

/** Simulator-side VS thread count for one drawcall at a batch size. */
double
simVsThreads(const DrawCall &draw, uint32_t batch_size)
{
    const auto batches = buildVertexBatches(draw.mesh->indices(),
                                            batch_size);
    uint64_t threads = 0;
    for (const auto &b : batches) {
        threads += ((b.uniqueVerts.size() + kWarpSize - 1) / kWarpSize) *
                   kWarpSize;
    }
    return static_cast<double>(threads * std::max(1u, draw.instanceCount));
}

} // namespace

int
main()
{
    setVerbose(false);
    header("Fig 3", "vertex shader invocations, sim vs hardware");
    const HardwareOracle oracle;

    // Collect per-drawcall oracle counts once (hardware behaviour is
    // batch-96 with exact thread counts).
    struct Point
    {
        std::string name;
        double hw;
        const DrawCall *draw;
    };
    std::vector<Point> points;
    std::vector<std::unique_ptr<AddressSpace>> heaps;
    std::vector<Scene> scenes;
    for (const std::string &name : allSceneNames()) {
        heaps.push_back(std::make_unique<AddressSpace>());
        scenes.push_back(buildSceneByName(name, *heaps.back()));
    }
    uint32_t draw_index = 0;
    for (const Scene &scene : scenes) {
        for (const DrawCall &draw : scene.draws) {
            DrawcallReport r;
            r.drawIndex = draw_index++;
            const auto batches = buildVertexBatches(
                draw.mesh->indices(), kDefaultVertexBatchSize);
            r.vsInvocations = totalVsInvocations(batches) *
                              std::max(1u, draw.instanceCount);
            points.push_back({scene.name + "/" + draw.name,
                              oracle.vsInvocations(r), &draw});
        }
    }

    // 1. Per-drawcall series at batch = 96.
    Table t({"drawcall", "hw invocations", "sim threads", "ratio"});
    std::vector<double> hw;
    std::vector<double> sim;
    for (const Point &p : points) {
        const double s = simVsThreads(*p.draw, kDefaultVertexBatchSize);
        hw.push_back(p.hw);
        sim.push_back(s);
        if (t.rows() < 24) {  // keep the printout readable
            t.addRow({p.name, Table::num(p.hw, 0), Table::num(s, 0),
                      Table::num(s / p.hw, 3)});
        }
    }
    std::printf("%s... (%zu drawcalls total)\n\n", t.toText().c_str(),
                points.size());
    t.writeCsv("fig3_vertex_invocations.csv");

    const double corr96 = pearson(hw, sim);
    std::printf("correlation at batch = 96: %.4f (paper: high, Fig 3)\n\n",
                corr96);

    // 2. Batch-size sweep: correlation of sim counts vs the fixed hw
    //    behaviour peaks at the hardware's batch size.
    Table sweep({"batch size", "correlation", "total sim threads"});
    double best_corr = -1.0;
    uint32_t best_batch = 0;
    for (uint32_t batch : {8u, 16u, 32u, 48u, 64u, 96u, 128u, 192u, 384u}) {
        std::vector<double> s;
        double total = 0.0;
        for (const Point &p : points) {
            s.push_back(simVsThreads(*p.draw, batch));
            total += s.back();
        }
        const double c = pearson(hw, s);
        sweep.addRow({std::to_string(batch), Table::num(c, 5),
                      Table::num(total, 0)});
        if (c > best_corr) {
            best_corr = c;
            best_batch = batch;
        }
    }
    sweep.emit("fig3_batch_sweep.csv");
    std::printf("best correlation at batch = %u (paper: 96)\n", best_batch);
    return corr96 > 0.95 ? 0 : 1;
}
