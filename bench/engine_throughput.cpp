// Parallel cycle-engine throughput: simulated cycles per wall-clock second
// at 1/2/4/8 worker threads on a compute-heavy many-SM machine, plus a
// determinism cross-check (all thread counts must produce identical stats).
//
// Emits BENCH_engine_throughput.json next to the binary.

#include <chrono>
#include <cstdio>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/engine_config.hpp"
#include "workloads/cached.hpp"

namespace crisp::bench
{
namespace
{

GpuConfig
bigGpu()
{
    GpuConfig cfg;
    cfg.name = "engine-bench";
    cfg.numSms = 16;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 256.0;
    cfg.l2.numBanks = 8;
    cfg.l2.bankGeometry = {256 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

/** Compute-heavy workload: enough CTAs to keep all 16 SMs busy. Routed
 *  through the trace cache (CRISP_TRACE_CACHE) so the bench can report
 *  generation vs replay build cost. */
std::vector<KernelInfo>
buildWorkload(AddressSpace &heap, bool *cache_hit)
{
    const std::string key = computeCacheKey(
        "engine_dense", "k=4/ctas=256/tpc=256/regs=48/iter=8/fp32=24/int=8",
        heap.allocatedEnd());
    return traceCache().loadOrBuild(
        key, heap,
        [](AddressSpace &h) {
            std::vector<KernelInfo> kernels;
            for (int i = 0; i < 4; ++i) {
                ComputeKernelDesc d;
                d.name = "dense" + std::to_string(i);
                d.ctas = 256;
                d.threadsPerCta = 256;
                d.regsPerThread = 48;
                d.iterations = 8;
                d.fp32Ops = 24;
                d.intOps = 8;
                d.loads = {{MemPatternKind::Broadcast, h.alloc(1 << 16),
                            1 << 16, 4, 2, 128}};
                kernels.push_back(buildComputeKernel(d));
            }
            return kernels;
        },
        cache_hit);
}

std::string
statsFingerprint(const StatsRegistry &stats)
{
    std::ostringstream os;
    for (const auto &[id, st] : stats.allStreams()) {
        os << id << ':' << st.cycles << ',' << st.instructions << ','
           << st.l1Accesses << ',' << st.l2Accesses << ','
           << st.dramReads << ',' << st.dramWrites << ';';
    }
    return os.str();
}

struct Measurement
{
    uint32_t threads = 1;
    Cycle cycles = 0;
    double wallSec = 0.0;
    double cyclesPerSec = 0.0;
    /** Wall-clock cost of obtaining the workload (generate or replay). */
    double buildSec = 0.0;
    bool cacheHit = false;
    std::string fingerprint;
};

Measurement
measure(uint32_t threads)
{
    Measurement m;
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(bigGpu());
    engine::EngineConfig ec;
    ec.threads = threads;
    gpu.setEngine(ec);
    const StreamId s = gpu.createStream("compute");
    const auto b0 = std::chrono::steady_clock::now();
    const std::vector<KernelInfo> kernels = buildWorkload(heap, &m.cacheHit);
    m.buildSec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - b0)
                     .count();
    for (const KernelInfo &k : kernels) {
        gpu.enqueueKernel(s, k);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto r = gpu.run(2'000'000'000ull);
    const auto t1 = std::chrono::steady_clock::now();
    fatal_if(!r.completed, "engine bench workload did not drain");

    m.threads = threads;
    m.cycles = r.cycles;
    m.wallSec = std::chrono::duration<double>(t1 - t0).count();
    m.cyclesPerSec = static_cast<double>(r.cycles) / m.wallSec;
    m.fingerprint = statsFingerprint(gpu.stats());
    return m;
}

} // namespace
} // namespace crisp::bench

int
main()
{
    using namespace crisp;
    using namespace crisp::bench;

    header("engine_throughput",
           "parallel cycle-engine scaling, 16-SM compute workload");
    const uint32_t cores = std::thread::hardware_concurrency();
    std::printf("host cores: %u%s\n\n", cores,
                cores < 4 ? "  (speedup needs >= 4; expect barrier "
                            "overhead only on this host)"
                          : "");

    std::vector<Measurement> runs;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
        runs.push_back(measure(threads));
        const Measurement &m = runs.back();
        std::printf("threads=%u  cycles=%llu  wall=%.3fs  "
                    "%.3fM cycles/s  speedup=%.2fx  build=%.3fs (%s)\n",
                    m.threads, static_cast<unsigned long long>(m.cycles),
                    m.wallSec, m.cyclesPerSec / 1e6,
                    m.cyclesPerSec / runs.front().cyclesPerSec, m.buildSec,
                    m.cacheHit ? "trace replay" : "generated");
    }

    bool deterministic = true;
    for (const Measurement &m : runs) {
        if (m.cycles != runs.front().cycles ||
            m.fingerprint != runs.front().fingerprint) {
            deterministic = false;
        }
    }
    std::printf("\ndeterministic across thread counts: %s\n",
                deterministic ? "yes" : "NO");

    // Generation vs replay build cost: the first cold run generates the
    // workload (and populates the cache when CRISP_TRACE_CACHE is set);
    // any cache-hit run replays the packed trace instead.
    double generation_sec = -1.0;
    double replay_sec = -1.0;
    for (const Measurement &m : runs) {
        if (!m.cacheHit && generation_sec < 0) {
            generation_sec = m.buildSec;
        }
        if (m.cacheHit && replay_sec < 0) {
            replay_sec = m.buildSec;
        }
    }

    FILE *f = std::fopen("BENCH_engine_throughput.json", "w");
    fatal_if(f == nullptr, "cannot write BENCH_engine_throughput.json");
    std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
    std::fprintf(f, "  \"num_sms\": 16,\n");
    std::fprintf(f, "  \"host_cores\": %u,\n", cores);
    std::fprintf(f, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(f, "  \"trace_cache_enabled\": %s,\n",
                 traceCache().enabled() ? "true" : "false");
    if (generation_sec >= 0) {
        std::fprintf(f, "  \"generation_wall_sec\": %.6f,\n",
                     generation_sec);
    }
    if (replay_sec >= 0) {
        std::fprintf(f, "  \"replay_wall_sec\": %.6f,\n", replay_sec);
    }
    std::fprintf(f, "  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const Measurement &m = runs[i];
        std::fprintf(f,
                     "    {\"threads\": %u, \"cycles\": %llu, "
                     "\"wall_sec\": %.6f, \"cycles_per_sec\": %.1f, "
                     "\"speedup\": %.3f, \"trace_cache_hit\": %s, "
                     "\"build_wall_sec\": %.6f}%s\n",
                     m.threads, static_cast<unsigned long long>(m.cycles),
                     m.wallSec, m.cyclesPerSec,
                     m.cyclesPerSec / runs.front().cyclesPerSec,
                     m.cacheHit ? "true" : "false", m.buildSec,
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_engine_throughput.json\n");
    return 0;
}
