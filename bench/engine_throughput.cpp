// Parallel cycle-engine throughput: simulated cycles per wall-clock second
// at 1/2/4/8 worker threads on a compute-heavy many-SM machine, plus a
// determinism cross-check (all thread counts must produce identical stats).
//
// Runs two machine sizes by default — the historical 16-SM config and a
// 64-SM config with a proportionally larger workload, where each worker
// lane has enough per-cycle work to hide the fork/join barrier. Pass
// `--num-sms N` to run a single size.
//
// Emits BENCH_engine_throughput.json next to the binary.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/engine_config.hpp"
#include "workloads/cached.hpp"

namespace crisp::bench
{
namespace
{

GpuConfig
bigGpu(uint32_t num_sms)
{
    GpuConfig cfg;
    cfg.name = "engine-bench";
    cfg.numSms = num_sms;
    cfg.coreClockMhz = 1000.0;
    cfg.memoryBandwidthGBs = 256.0;
    cfg.l2.numBanks = 8;
    cfg.l2.bankGeometry = {256 * 1024, 8, kLineBytes};
    cfg.finalize();
    return cfg;
}

/** Compute-heavy workload sized to keep @p num_sms SMs busy (16 CTAs per
 *  SM per kernel). Routed through the trace cache (CRISP_TRACE_CACHE) so
 *  the bench can report generation vs replay build cost. */
std::vector<KernelInfo>
buildWorkload(AddressSpace &heap, uint32_t num_sms, bool *cache_hit)
{
    const uint32_t ctas = 16 * num_sms;
    const std::string key = computeCacheKey(
        "engine_dense",
        "k=4/ctas=" + std::to_string(ctas) +
            "/tpc=256/regs=48/iter=8/fp32=24/int=8",
        heap.allocatedEnd());
    return traceCache().loadOrBuild(
        key, heap,
        [ctas](AddressSpace &h) {
            std::vector<KernelInfo> kernels;
            for (int i = 0; i < 4; ++i) {
                ComputeKernelDesc d;
                d.name = "dense" + std::to_string(i);
                d.ctas = ctas;
                d.threadsPerCta = 256;
                d.regsPerThread = 48;
                d.iterations = 8;
                d.fp32Ops = 24;
                d.intOps = 8;
                d.loads = {{MemPatternKind::Broadcast, h.alloc(1 << 16),
                            1 << 16, 4, 2, 128}};
                kernels.push_back(buildComputeKernel(d));
            }
            return kernels;
        },
        cache_hit);
}

std::string
statsFingerprint(const StatsRegistry &stats)
{
    std::ostringstream os;
    for (const auto &[id, st] : stats.allStreams()) {
        os << id << ':' << st.cycles << ',' << st.instructions << ','
           << st.l1Accesses << ',' << st.l2Accesses << ','
           << st.dramReads << ',' << st.dramWrites << ';';
    }
    return os.str();
}

struct Measurement
{
    uint32_t threads = 1;
    /** Lanes actually used after the host-core/SM clamp. */
    uint32_t threadsEffective = 1;
    Cycle cycles = 0;
    double wallSec = 0.0;
    double cyclesPerSec = 0.0;
    /** Wall-clock cost of obtaining the workload (generate or replay). */
    double buildSec = 0.0;
    bool cacheHit = false;
    std::string fingerprint;
};

Measurement
measure(uint32_t num_sms, uint32_t threads)
{
    Measurement m;
    AddressSpace heap(0x8000'0000ull);
    Gpu gpu(bigGpu(num_sms));
    engine::EngineConfig ec;
    ec.threads = threads;
    gpu.setEngine(ec);
    const StreamId s = gpu.createStream("compute");
    const auto b0 = std::chrono::steady_clock::now();
    const std::vector<KernelInfo> kernels =
        buildWorkload(heap, num_sms, &m.cacheHit);
    m.buildSec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - b0)
                     .count();
    for (const KernelInfo &k : kernels) {
        gpu.enqueueKernel(s, k);
    }

    const auto t0 = std::chrono::steady_clock::now();
    const auto r = gpu.run(2'000'000'000ull);
    const auto t1 = std::chrono::steady_clock::now();
    fatal_if(!r.completed, "engine bench workload did not drain");

    m.threads = threads;
    m.threadsEffective = gpu.engineConfig().threads;
    m.cycles = r.cycles;
    m.wallSec = std::chrono::duration<double>(t1 - t0).count();
    m.cyclesPerSec = static_cast<double>(r.cycles) / m.wallSec;
    m.fingerprint = statsFingerprint(gpu.stats());
    return m;
}

struct ConfigResult
{
    uint32_t numSms = 0;
    bool deterministic = true;
    double generationSec = -1.0;
    double replaySec = -1.0;
    std::vector<Measurement> runs;
};

ConfigResult
runConfig(uint32_t num_sms)
{
    ConfigResult cr;
    cr.numSms = num_sms;
    std::printf("-- num_sms=%u --\n", num_sms);
    if (traceCache().enabled()) {
        // Cold-populate the trace cache up front so every measured run
        // replays: generation and replay drive different CtaGenerators,
        // and mixing them would skew the thread-scaling comparison.
        AddressSpace warm_heap(0x8000'0000ull);
        bool hit = false;
        const auto w0 = std::chrono::steady_clock::now();
        buildWorkload(warm_heap, num_sms, &hit);
        const double warm_sec = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - w0)
                                    .count();
        if (!hit) {
            cr.generationSec = warm_sec;
        }
        std::printf("trace cache %s in %.3fs\n",
                    hit ? "warm" : "populated", warm_sec);
    }
    // One untimed warmup simulation: the first run on a quiet host pays
    // page-cache and frequency-ramp costs that the later thread counts
    // don't, which would systematically understate the threads=1 rate
    // every other speedup is normalized to.
    (void)measure(num_sms, 1);
    // Best-of-5 per thread count, with repetitions interleaved
    // round-robin across thread counts: individual runs are short enough
    // that scheduler noise on a shared host swings them several percent,
    // and slow load drift would otherwise bias whichever count happened
    // to run during the quiet stretch. Min-wall is the standard estimator
    // for the noise-free rate.
    constexpr int kReps = 5;
    const std::vector<uint32_t> counts = {1u, 2u, 4u, 8u};
    std::vector<Measurement> best;
    for (uint32_t threads : counts) {
        best.push_back(measure(num_sms, threads));
    }
    for (int rep = 1; rep < kReps; ++rep) {
        for (size_t i = 0; i < counts.size(); ++i) {
            Measurement next = measure(num_sms, counts[i]);
            fatal_if(next.fingerprint != best[i].fingerprint ||
                         next.cycles != best[i].cycles,
                     "nondeterminism across repetitions");
            if (next.wallSec < best[i].wallSec) {
                best[i] = next;
            }
        }
    }
    for (const Measurement &picked : best) {
        cr.runs.push_back(picked);
        const Measurement &m = cr.runs.back();
        std::printf("threads=%u (eff %u)  cycles=%llu  wall=%.3fs  "
                    "%.3fM cycles/s  speedup=%.2fx  build=%.3fs (%s)\n",
                    m.threads, m.threadsEffective,
                    static_cast<unsigned long long>(m.cycles), m.wallSec,
                    m.cyclesPerSec / 1e6,
                    m.cyclesPerSec / cr.runs.front().cyclesPerSec,
                    m.buildSec, m.cacheHit ? "trace replay" : "generated");
    }
    for (const Measurement &m : cr.runs) {
        if (m.cycles != cr.runs.front().cycles ||
            m.fingerprint != cr.runs.front().fingerprint) {
            cr.deterministic = false;
        }
        if (!m.cacheHit && cr.generationSec < 0) {
            cr.generationSec = m.buildSec;
        }
        if (m.cacheHit && cr.replaySec < 0) {
            cr.replaySec = m.buildSec;
        }
    }
    std::printf("deterministic across thread counts: %s\n\n",
                cr.deterministic ? "yes" : "NO");
    return cr;
}

} // namespace
} // namespace crisp::bench

int
main(int argc, char **argv)
{
    using namespace crisp;
    using namespace crisp::bench;

    std::vector<uint32_t> sizes = {16u, 64u};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--num-sms" && i + 1 < argc) {
            sizes = {static_cast<uint32_t>(std::atoi(argv[++i]))};
        } else {
            std::fprintf(stderr, "usage: %s [--num-sms N]\n", argv[0]);
            return 2;
        }
    }

    header("engine_throughput",
           "parallel cycle-engine scaling, compute workload");
    const uint32_t cores = std::thread::hardware_concurrency();
    std::printf("host cores: %u%s\n\n", cores,
                cores < 4 ? "  (speedup needs >= 4; thread counts above "
                            "the core count clamp to serial)"
                          : "");

    std::vector<ConfigResult> configs;
    for (uint32_t num_sms : sizes) {
        configs.push_back(runConfig(num_sms));
    }

    FILE *f = std::fopen("BENCH_engine_throughput.json", "w");
    fatal_if(f == nullptr, "cannot write BENCH_engine_throughput.json");
    std::fprintf(f, "{\n  \"bench\": \"engine_throughput\",\n");
    std::fprintf(f, "  \"host_cores\": %u,\n", cores);
    std::fprintf(f, "  \"trace_cache_enabled\": %s,\n",
                 traceCache().enabled() ? "true" : "false");
    std::fprintf(f, "  \"configs\": [\n");
    for (size_t c = 0; c < configs.size(); ++c) {
        const ConfigResult &cr = configs[c];
        std::fprintf(f, "    {\"num_sms\": %u, \"deterministic\": %s,\n",
                     cr.numSms, cr.deterministic ? "true" : "false");
        if (cr.generationSec >= 0) {
            std::fprintf(f, "     \"generation_wall_sec\": %.6f,\n",
                         cr.generationSec);
        }
        if (cr.replaySec >= 0) {
            std::fprintf(f, "     \"replay_wall_sec\": %.6f,\n",
                         cr.replaySec);
        }
        std::fprintf(f, "     \"runs\": [\n");
        for (size_t i = 0; i < cr.runs.size(); ++i) {
            const Measurement &m = cr.runs[i];
            std::fprintf(
                f,
                "      {\"threads\": %u, \"threads_effective\": %u, "
                "\"cycles\": %llu, "
                "\"wall_sec\": %.6f, \"cycles_per_sec\": %.1f, "
                "\"speedup\": %.3f, \"trace_cache_hit\": %s, "
                "\"build_wall_sec\": %.6f}%s\n",
                m.threads, m.threadsEffective,
                static_cast<unsigned long long>(m.cycles), m.wallSec,
                m.cyclesPerSec,
                m.cyclesPerSec / cr.runs.front().cyclesPerSec,
                m.cacheHit ? "true" : "false", m.buildSec,
                i + 1 < cr.runs.size() ? "," : "");
        }
        std::fprintf(f, "     ]}%s\n",
                     c + 1 < configs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_engine_throughput.json\n");
    return 0;
}
