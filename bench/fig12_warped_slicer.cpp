/**
 * @file
 * Fig 12: Warped-Slicer on intra-SM partitioning, Jetson Orin.
 *
 * All rendering x compute pairs run under three schemes — MPS (inter-SM
 * even), EVEN (intra-SM static even quotas) and Dynamic (intra-SM with
 * Warped-Slicer) — and system throughput (STP = sum of per-stream
 * alone-time / co-run-time) is normalized to MPS. The paper finds EVEN
 * fastest overall: VIO's many small kernels cannot amortize the sampling
 * overhead, HOLO contends for FP units once truly shared, and NN benefits
 * most because its low-occupancy shared-memory kernels leave resources the
 * rendering pipeline can exploit when sharing the SM.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Fig 12", "Warped-Slicer vs MPS vs EVEN (Jetson Orin)");
    const GpuConfig gpu_cfg = GpuConfig::jetsonOrin();
    const uint32_t w = 640;
    const uint32_t h = 360;
    const std::vector<std::string> scenes = {"SPH", "PL", "MT"};
    const std::vector<std::string> computes = {"VIO", "HOLO", "NN"};
    const std::vector<PairScheme> schemes = {
        PairScheme::MpsEven, PairScheme::FgEven,
        PairScheme::FgWarpedSlicer};

    // Alone-run baselines for the STP metric.
    std::map<std::string, double> gfx_alone;
    std::map<std::string, double> cmp_alone;
    for (const auto &scene : scenes) {
        gfx_alone[scene] = static_cast<double>(
            runGraphicsAlone(scene, gpu_cfg, w, h));
    }
    for (const auto &cmp : computes) {
        cmp_alone[cmp] =
            static_cast<double>(runComputeAlone(cmp, gpu_cfg));
    }

    Table t({"pair", "STP MPS", "STP EVEN", "STP Dynamic",
             "EVEN vs MPS", "Dynamic vs MPS", "EVEN vs serial"});
    std::vector<double> even_rel;
    std::vector<double> dyn_rel;
    std::map<std::string, double> even_by_compute;
    std::map<std::string, double> serial_by_compute;
    std::map<std::string, int> count_by_compute;

    uint64_t repartitions = 0;

    for (const auto &scene : scenes) {
        for (const auto &cmp : computes) {
            std::map<PairScheme, double> stp;
            double even_makespan = 0.0;
            for (PairScheme scheme : schemes) {
                // Trace the Dynamic runs: the slicer emits a Repartition
                // event per quota change, giving a cheap sanity count of
                // how often the sampled optimum actually moved.
                telemetry::TelemetrySink sink;
                const bool traced = scheme == PairScheme::FgWarpedSlicer;
                const PairResult r = runPair(
                    scene, cmp, gpu_cfg, scheme, w, h,
                    [&](Gpu &gpu, StreamId, StreamId) {
                        if (traced) {
                            gpu.setTelemetry(&sink);
                        }
                    });
                if (traced) {
                    repartitions +=
                        sink.count(telemetry::EventKind::Repartition);
                }
                stp[scheme] =
                    gfx_alone[scene] / static_cast<double>(r.gfxFinish) +
                    cmp_alone[cmp] / static_cast<double>(r.cmpFinish);
                if (scheme == PairScheme::FgEven) {
                    even_makespan = static_cast<double>(r.makespan);
                }
            }
            // Concurrency benefit vs serial execution of the two tasks.
            const double serial_speedup =
                (gfx_alone[scene] + cmp_alone[cmp]) / even_makespan;
            const double even_speed =
                stp[PairScheme::FgEven] / stp[PairScheme::MpsEven];
            const double dyn_speed =
                stp[PairScheme::FgWarpedSlicer] /
                stp[PairScheme::MpsEven];
            even_rel.push_back(even_speed);
            dyn_rel.push_back(dyn_speed);
            even_by_compute[cmp] += even_speed;
            serial_by_compute[cmp] += serial_speedup;
            count_by_compute[cmp]++;
            t.addRow({scene + "+" + cmp,
                      Table::num(stp[PairScheme::MpsEven], 2),
                      Table::num(stp[PairScheme::FgEven], 2),
                      Table::num(stp[PairScheme::FgWarpedSlicer], 2),
                      Table::num(even_speed, 2),
                      Table::num(dyn_speed, 2),
                      Table::num(serial_speedup, 2)});
        }
    }
    t.emit("fig12_warped_slicer.csv");

    const double even_gm = geomean(even_rel);
    const double dyn_gm = geomean(dyn_rel);
    std::printf("geomean STP vs MPS: EVEN %.2fx, Dynamic %.2fx "
                "(paper: EVEN is the fastest of the three)\n",
                even_gm, dyn_gm);
    for (const auto &[cmp, total] : even_by_compute) {
        std::printf("  EVEN STP gain with %-4s: %.2fx, concurrency "
                    "speedup vs serial: %.2fx%s\n", cmp.c_str(),
                    total / count_by_compute[cmp],
                    serial_by_compute[cmp] / count_by_compute[cmp],
                    cmp == "NN" ? "  (paper: NN shows the highest "
                                  "speedup running concurrently)"
                                : "");
    }
    std::printf("repartition decisions traced across Dynamic runs: %llu\n",
                static_cast<unsigned long long>(repartitions));
    return even_gm >= dyn_gm * 0.98 ? 0 : 1;
}
