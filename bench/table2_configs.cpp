/**
 * @file
 * Table II: the two simulation configurations (Jetson Orin, RTX 3070).
 * Prints the resolved parameters of both presets in the paper's layout and
 * cross-checks the derived quantities the rest of the harness relies on.
 */

#include "bench_util.hpp"

using namespace crisp;
using namespace crisp::bench;

int
main()
{
    setVerbose(false);
    header("Table II", "simulation configurations");

    const GpuConfig orin = GpuConfig::jetsonOrin();
    const GpuConfig rtx = GpuConfig::rtx3070();

    auto mem_desc = [](const GpuConfig &g) {
        return g.memoryDesc + ", " + Table::num(g.memoryBandwidthGBs, 0) +
               "GB/s";
    };
    auto l1_desc = [](const GpuConfig &g) {
        return std::to_string(
                   (g.sm.l1SizeBytes + g.sm.smemBytes) / 1024) +
               " KB";
    };

    Table t({"", "Jetson Orin", "RTX 3070"});
    t.addRow({"# SMs", std::to_string(orin.numSms),
              std::to_string(rtx.numSms)});
    t.addRow({"# Registers / SM", std::to_string(orin.sm.registers),
              std::to_string(rtx.sm.registers)});
    t.addRow({"L1 Data Cache + Shared Memory", l1_desc(orin),
              l1_desc(rtx)});
    t.addRow({"# Warps / SM",
              "Warps/SM = " + std::to_string(orin.sm.maxWarps) +
                  ", Schedulers/SM = " +
                  std::to_string(orin.sm.numSchedulers),
              "same"});
    t.addRow({"# Exec Units",
              std::to_string(orin.sm.fp32Units) + " FPs, " +
                  std::to_string(orin.sm.sfuUnits) + " SFUs, " +
                  std::to_string(orin.sm.intUnits) + " INTs, " +
                  std::to_string(orin.sm.tensorUnits) + " TENSORs",
              "same"});
    t.addRow({"L2 Cache",
              std::to_string(orin.l2.numBanks *
                             orin.l2.bankGeometry.sizeBytes / (1 << 20)) +
                  " MB / " + std::to_string(orin.l2.numBanks) + " banks",
              std::to_string(rtx.l2.numBanks *
                             rtx.l2.bankGeometry.sizeBytes / (1 << 20)) +
                  " MB / " + std::to_string(rtx.l2.numBanks) + " banks"});
    t.addRow({"Compute Core Clock",
              Table::num(orin.coreClockMhz, 0) + " MHz",
              Table::num(rtx.coreClockMhz, 0) + " MHz"});
    t.addRow({"Memory", mem_desc(orin), mem_desc(rtx)});
    t.addRow({"DRAM bytes / core cycle (derived)",
              Table::num(orin.dramBytesPerCycle(), 1),
              Table::num(rtx.dramBytesPerCycle(), 1)});
    t.emit("table2_configs.csv");

    // Cross-checks against the paper's stated values.
    bool ok = true;
    ok &= orin.numSms == 14 && rtx.numSms == 46;
    ok &= orin.sm.registers == 65536 && rtx.sm.registers == 65536;
    ok &= orin.l2.numBanks * orin.l2.bankGeometry.sizeBytes ==
          4ull * 1024 * 1024;
    ok &= rtx.l2.numBanks * rtx.l2.bankGeometry.sizeBytes ==
          4ull * 1024 * 1024;
    ok &= orin.memoryBandwidthGBs == 200.0 &&
          rtx.memoryBandwidthGBs == 448.0;
    std::printf("cross-check vs Table II: %s\n", ok ? "ok" : "MISMATCH");
    return ok ? 0 : 1;
}
